package sim

import (
	"math"
	"math/bits"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
	"gpushield/internal/memsys"
)

// stackEntry is one SIMT reconvergence-stack record. A divergent branch
// pushes the reconvergence state and the not-taken path; reaching the
// reconvergence PC pops the next entry (the standard TOS scheme).
type stackEntry struct {
	reconvPC int
	pc       int
	mask     uint64
}

// warp is one resident sub-workgroup context.
type warp struct {
	wg     *workgroup
	inWG   int // warp index within the workgroup
	pc     int
	active uint64 // live, non-exited lanes currently enabled
	exited uint64 // lanes retired via exit
	stack  []stackEntry
	regs   [][]int64 // [lane][reg]
	flat   []int64   // the backing array of regs: [lane*nregs + reg]
	nregs  int

	readyAt   uint64
	atBarrier bool
	done      bool
}

// workgroup is one resident thread block.
type workgroup struct {
	run     *kernelRun
	id      int
	warps   []*warp
	shared  []byte
	arrived int // warps waiting at the barrier
	live    int // warps not yet done
}

// coreState is one shader core (SM): warp contexts, private L1D and L1 TLB,
// the LSU occupancy clock, and the bounds-checking unit.
type coreState struct {
	id    int
	gpu   *GPU
	l1d   *memsys.Cache
	l1tlb *memsys.TLB
	bcu   *core.BCU

	wgs         []*workgroup
	warps       []*warp
	threadsUsed int
	lsuFreeAt   uint64
	lastWarp    int // greedy-then-oldest cursor
	rrRun       int // round-robin kernel cursor for dispatch

	// intent is the core's phase-A scratch under the parallel scheduler:
	// the chosen instruction plus every shared-state effect it deferred.
	// pend points at intent only while the core-private half of an
	// instruction executes in phase A; helpers that would otherwise touch
	// shared state (run stats, liveWGs, dispatchNeeded, the wake heap)
	// consult it and record into the intent instead. It is nil during
	// serial execution and during the commit phase, so those paths mutate
	// shared state directly, exactly as the serial scheduler always has.
	intent coreIntent
	pend   *coreIntent
}

// statsFor returns the LaunchStats sink for counters incremented during the
// core-private half of an instruction: the run's stats in serial execution,
// or the core's intent scratch during parallel phase A (the commit phase
// folds the scratch into the run in ascending core-id order, so totals are
// byte-identical to serial accumulation).
func (c *coreState) statsFor(r *kernelRun) *LaunchStats {
	if c.pend != nil {
		return &c.pend.stats
	}
	return r.stats
}

// placeWorkgroup instantiates workgroup wgID of run r on this core.
func (c *coreState) placeWorkgroup(r *kernelRun, wgID int, now uint64) {
	l := r.launch
	ww := c.gpu.cfg.WarpWidth
	nw := (l.Block + ww - 1) / ww
	wg := &workgroup{run: r, id: wgID, live: nw}
	if l.Kernel.SharedBytes > 0 {
		wg.shared = make([]byte, l.Kernel.SharedBytes)
	}
	for wi := 0; wi < nw; wi++ {
		var mask uint64
		for lane := 0; lane < ww; lane++ {
			if wi*ww+lane < l.Block {
				mask |= 1 << uint(lane)
			}
		}
		w := &warp{wg: wg, inWG: wi, active: mask, readyAt: now}
		w.regs = make([][]int64, ww)
		flat := make([]int64, ww*l.Kernel.NumRegs)
		w.flat, w.nregs = flat, l.Kernel.NumRegs
		for lane := 0; lane < ww; lane++ {
			w.regs[lane] = flat[lane*l.Kernel.NumRegs : (lane+1)*l.Kernel.NumRegs]
		}
		wg.warps = append(wg.warps, w)
		c.warps = append(c.warps, w)
	}
	c.wgs = append(c.wgs, wg)
	c.threadsUsed += l.Block
	// Fresh warps are ready immediately: wake the core.
	c.gpu.wakes.earlier(c.id, now)
}

// removeWorkgroup frees a completed (or aborted) workgroup's resources.
func (c *coreState) removeWorkgroup(wg *workgroup) {
	for i, x := range c.wgs {
		if x == wg {
			c.wgs = append(c.wgs[:i], c.wgs[i+1:]...)
			break
		}
	}
	kept := c.warps[:0]
	for _, w := range c.warps {
		if w.wg != wg {
			kept = append(kept, w)
		}
	}
	c.warps = kept
	c.threadsUsed -= wg.run.launch.Block
	if c.lastWarp >= len(c.warps) {
		c.lastWarp = 0
	}
	// Freed capacity may admit a pending workgroup; run dispatch this step.
	// Under the parallel scheduler the flag is GPU-global shared state, so a
	// phase-A retire defers it to the commit.
	if c.pend != nil {
		c.pend.dispatch = true
	} else {
		c.gpu.dispatchNeeded = true
	}
}

// issuePick is the outcome of one scheduler scan: the chosen warp (w == nil
// when nothing can issue this cycle) and the wake bookkeeping the scan
// computed for free — the earliest future readyAt, or lsuFreeAt for a ready
// warp stalled behind the LSU.
type issuePick struct {
	idx  int
	w    *warp
	in   *kernel.Instr
	next uint64
}

// selectWarp scans for the next instruction to issue without committing to
// it, greedy-then-oldest: the warp issued last keeps priority while it is
// ready, which preserves the RCache temporal locality the paper relies on.
//
// The scan's only mutation is reconvergence-stack normalization, which is
// idempotent — re-running the scan from the same cycle picks the same warp.
// The parallel scheduler's hazard fallback (re-execute the whole cycle on
// the serial path) depends on exactly that property.
func (c *coreState) selectWarp(now uint64) issuePick {
	n := len(c.warps)
	pick := issuePick{idx: -1, next: farFuture}
	for k := 0; k < n; k++ {
		idx := (c.lastWarp + k) % n
		w := c.warps[idx]
		if w.done || w.atBarrier {
			continue
		}
		if w.readyAt > now {
			if w.readyAt < pick.next {
				pick.next = w.readyAt
			}
			continue
		}
		in := &w.wg.run.launch.Kernel.Code[w.reconverge()]
		if in.Op.IsMemory() && in.Space != kernel.SpaceShared && c.lsuFreeAt > now {
			if c.lsuFreeAt < pick.next {
				pick.next = c.lsuFreeAt
			}
			continue
		}
		pick.idx, pick.w, pick.in = idx, w, in
		return pick
	}
	return pick
}

// tryIssue issues at most one instruction on this core at cycle now.
//
// It also maintains the core's wake time. On an issue the core may issue
// again next cycle, so the wake moves to now+1. On a failed scan the pass
// has already seen every warp, so the exact next opportunity is recorded
// for free; until then the scheduler never looks at this core.
func (c *coreState) tryIssue(now uint64) bool {
	p := c.selectWarp(now)
	if p.w == nil {
		c.gpu.wakes.set(c.id, p.next)
		return false
	}
	c.lastWarp = p.idx
	c.execute(p.w, p.in, now)
	c.gpu.wakes.set(c.id, now+1)
	return true
}

// reconverge pops reconvergence-stack entries whose point the warp reached
// and returns the (possibly updated) PC.
func (w *warp) reconverge() int {
	for len(w.stack) > 0 {
		top := w.stack[len(w.stack)-1]
		if w.pc != top.reconvPC {
			break
		}
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = top.pc
		w.active = top.mask &^ w.exited
	}
	return w.pc
}

// guardMask returns the lanes that execute the instruction: active lanes
// whose guard register (if any) passes.
func (w *warp) guardMask(in *kernel.Instr) uint64 {
	if in.Pred < 0 {
		return w.active
	}
	var m uint64
	for lanes := w.active; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		v := w.flat[lane*w.nregs+in.Pred] != 0
		if v != in.PNeg {
			m |= 1 << uint(lane)
		}
	}
	return m
}

// execute runs one warp instruction: functional semantics plus timing.
func (c *coreState) execute(w *warp, in *kernel.Instr, now uint64) {
	r := w.wg.run
	st := c.statsFor(r)
	gmask := w.guardMask(in)
	st.WarpInstrs++
	st.ThreadInstrs += uint64(bits.OnesCount64(gmask))
	cfg := &c.gpu.cfg

	switch {
	case in.Op.IsMemory():
		c.execMem(w, in, gmask, now)
		return

	case in.Op == kernel.OpBar:
		w.pc++
		w.atBarrier = true
		w.wg.arrived++
		c.releaseBarrier(w.wg, now)
		return

	case in.Op == kernel.OpExit:
		w.exited |= gmask
		w.active &^= gmask
		w.pc++
		if w.active == 0 {
			// Resume any outstanding paths; otherwise the warp retires.
			for len(w.stack) > 0 && w.active == 0 {
				top := w.stack[len(w.stack)-1]
				w.stack = w.stack[:len(w.stack)-1]
				w.pc = top.pc
				w.active = top.mask &^ w.exited
			}
			if w.active == 0 {
				c.retireWarp(w, now)
				return
			}
		}
		w.readyAt = now + 1
		return

	case in.Op.IsBranch():
		c.execBranch(w, in, gmask, now)
		return
	}

	// ALU path.
	c.execALUWarp(w, in, gmask)
	w.pc++
	w.readyAt = now + uint64(aluLatency(cfg, in.Op))
}

// retireWarp marks the warp done and completes its workgroup when it was
// the last one.
func (c *coreState) retireWarp(w *warp, now uint64) {
	if w.done {
		return
	}
	w.done = true
	wg := w.wg
	wg.live--
	c.releaseBarrier(wg, now)
	if wg.live == 0 {
		c.removeWorkgroup(wg)
		// The live-workgroup count is owned by the run (shared across
		// cores); a phase-A retire defers the decrement to the commit.
		if c.pend != nil {
			c.pend.retired = wg.run
		} else {
			wg.run.liveWGs--
		}
	}
}

// releaseBarrier opens the workgroup barrier once every live warp arrived.
func (c *coreState) releaseBarrier(wg *workgroup, now uint64) {
	if wg.live == 0 || wg.arrived < wg.live {
		return
	}
	wg.arrived = 0
	for _, w := range wg.warps {
		if !w.done && w.atBarrier {
			w.atBarrier = false
			w.readyAt = now + 1
		}
	}
	// Released warps are ready next cycle; wake the core for them. A
	// release can only happen inside an issuing execute, whose caller
	// (tryIssue serially, the commit phase in parallel) re-arms the core at
	// now+1 unconditionally — so in phase A, where the heap is shared, the
	// call is simply skipped rather than deferred.
	if c.pend == nil {
		c.gpu.wakes.earlier(c.id, now+1)
	}
}

func (c *coreState) execBranch(w *warp, in *kernel.Instr, gmask uint64, now uint64) {
	cfg := &c.gpu.cfg
	w.readyAt = now + uint64(cfg.ALULatency)
	switch in.Op {
	case kernel.OpBraUni:
		w.pc = in.Label
	case kernel.OpBraAny:
		if gmask != 0 {
			w.pc = in.Label
		} else {
			w.pc++
		}
	case kernel.OpBraAll:
		if gmask == w.active && w.active != 0 {
			w.pc = in.Label
		} else {
			w.pc++
		}
	case kernel.OpBraDiv:
		taken := gmask
		switch {
		case taken == w.active:
			w.pc = in.Label
		case taken == 0:
			w.pc++
		default:
			// Push reconvergence state, then the fall-through path; execute
			// the taken path first.
			w.stack = append(w.stack,
				stackEntry{reconvPC: in.Reconv, pc: in.Reconv, mask: w.active},
				stackEntry{reconvPC: in.Reconv, pc: w.pc + 1, mask: w.active &^ taken},
			)
			w.active = taken
			w.pc = in.Label
		}
	}
}

// srcPlan is a source operand resolved once per warp instruction instead of
// once per lane. Every operand kind is either a per-lane register read
// (reg >= 0) or an affine function of the lane id, base + slope*lane:
// immediates and params are lane-invariant (slope 0), and each special
// register is affine by construction (tid = inWG*ww + lane, etc.).
type srcPlan struct {
	reg   int
	base  int64
	slope int64
}

func (p *srcPlan) eval(w *warp, lane int) int64 {
	if p.reg >= 0 {
		return w.flat[lane*w.nregs+p.reg]
	}
	return p.base + p.slope*int64(lane)
}

// plan resolves one operand of w's current instruction into a srcPlan. It
// must agree exactly with operand()/special() — the golden-stats tests lock
// that equivalence.
func (c *coreState) plan(w *warp, op kernel.Operand) srcPlan {
	switch op.Kind {
	case kernel.OperandReg:
		return srcPlan{reg: op.Reg}
	case kernel.OperandImm:
		return srcPlan{reg: -1, base: op.Imm}
	case kernel.OperandParam:
		return srcPlan{reg: -1, base: int64(w.wg.run.launch.Args[op.Param])}
	case kernel.OperandSpecial:
		l := w.wg.run.launch
		switch op.Special {
		case kernel.SpecTIDX:
			return srcPlan{reg: -1, base: int64(w.inWG * c.gpu.cfg.WarpWidth), slope: 1}
		case kernel.SpecCTAIDX:
			return srcPlan{reg: -1, base: int64(w.wg.id)}
		case kernel.SpecNTIDX:
			return srcPlan{reg: -1, base: int64(l.Block)}
		case kernel.SpecNTIDY, kernel.SpecNCTAIDY:
			return srcPlan{reg: -1, base: 1}
		case kernel.SpecNCTAIDX:
			return srcPlan{reg: -1, base: int64(l.Grid)}
		case kernel.SpecLaneID:
			return srcPlan{reg: -1, slope: 1}
		case kernel.SpecWarpID:
			return srcPlan{reg: -1, base: int64(w.inWG)}
		case kernel.SpecGlobalTID:
			return srcPlan{reg: -1,
				base:  int64(w.wg.id)*int64(l.Block) + int64(w.inWG*c.gpu.cfg.WarpWidth),
				slope: 1}
		case kernel.SpecGlobalSize:
			return srcPlan{reg: -1, base: int64(l.Grid) * int64(l.Block)}
		}
		return srcPlan{reg: -1} // SpecTIDY, SpecCTAIDY, unknown
	}
	return srcPlan{reg: -1} // OperandNone
}

// operand evaluates one source operand for a lane.
func (c *coreState) operand(w *warp, op kernel.Operand, lane int) int64 {
	switch op.Kind {
	case kernel.OperandReg:
		return w.regs[lane][op.Reg]
	case kernel.OperandImm:
		return op.Imm
	case kernel.OperandParam:
		return int64(w.wg.run.launch.Args[op.Param])
	case kernel.OperandSpecial:
		return c.special(w, op.Special, lane)
	}
	return 0
}

func (c *coreState) special(w *warp, s kernel.Special, lane int) int64 {
	l := w.wg.run.launch
	ww := c.gpu.cfg.WarpWidth
	tid := int64(w.inWG*ww + lane)
	switch s {
	case kernel.SpecTIDX:
		return tid
	case kernel.SpecTIDY, kernel.SpecCTAIDY:
		return 0
	case kernel.SpecCTAIDX:
		return int64(w.wg.id)
	case kernel.SpecNTIDX:
		return int64(l.Block)
	case kernel.SpecNTIDY, kernel.SpecNCTAIDY:
		return 1
	case kernel.SpecNCTAIDX:
		return int64(l.Grid)
	case kernel.SpecLaneID:
		return int64(lane)
	case kernel.SpecWarpID:
		return int64(w.inWG)
	case kernel.SpecGlobalTID:
		return int64(w.wg.id)*int64(l.Block) + tid
	case kernel.SpecGlobalSize:
		return int64(l.Grid) * int64(l.Block)
	}
	return 0
}

// execALUWarp executes one ALU instruction across all guarded lanes.
// Operands are resolved once per warp instruction (srcPlan), and for the
// common integer opcodes the opcode itself is dispatched once per warp with
// a dedicated lane loop, so the per-lane work is just operand reads and the
// arithmetic. Rare opcodes (divides, floating point, converts) fall back to
// the per-lane interpreter, which is the semantic reference.
func (c *coreState) execALUWarp(w *warp, in *kernel.Instr, gmask uint64) {
	var ps [3]srcPlan
	ps[0] = c.plan(w, in.Src[0])
	ps[1] = c.plan(w, in.Src[1])
	ps[2] = c.plan(w, in.Src[2])
	dst := in.Dst
	if dst < 0 {
		// Destination-less integer ALU ops have no architectural effect;
		// keep the reference path for exactness.
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			execALU(w, in, lane, &ps)
		}
		return
	}
	switch in.Op {
	case kernel.OpMov:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane)
		}
	case kernel.OpAdd:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) + ps[1].eval(w, lane)
		}
	case kernel.OpSub:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) - ps[1].eval(w, lane)
		}
	case kernel.OpMul:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) * ps[1].eval(w, lane)
		}
	case kernel.OpMad:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane)*ps[1].eval(w, lane) + ps[2].eval(w, lane)
		}
	case kernel.OpMin:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			a, b := ps[0].eval(w, lane), ps[1].eval(w, lane)
			if b < a {
				a = b
			}
			w.flat[lane*w.nregs+dst] = a
		}
	case kernel.OpMax:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			a, b := ps[0].eval(w, lane), ps[1].eval(w, lane)
			if b > a {
				a = b
			}
			w.flat[lane*w.nregs+dst] = a
		}
	case kernel.OpAnd:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) & ps[1].eval(w, lane)
		}
	case kernel.OpOr:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) | ps[1].eval(w, lane)
		}
	case kernel.OpXor:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) ^ ps[1].eval(w, lane)
		}
	case kernel.OpShl:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) << uint64(ps[1].eval(w, lane)&63)
		}
	case kernel.OpShr:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = int64(uint64(ps[0].eval(w, lane)) >> uint64(ps[1].eval(w, lane)&63))
		}
	case kernel.OpSetLT:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) < ps[1].eval(w, lane))
		}
	case kernel.OpSetLE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) <= ps[1].eval(w, lane))
		}
	case kernel.OpSetEQ:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) == ps[1].eval(w, lane))
		}
	case kernel.OpSetNE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) != ps[1].eval(w, lane))
		}
	case kernel.OpSetGT:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) > ps[1].eval(w, lane))
		}
	case kernel.OpSetGE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) >= ps[1].eval(w, lane))
		}
	case kernel.OpSelp:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			v := ps[1].eval(w, lane)
			if ps[2].eval(w, lane) != 0 {
				v = ps[0].eval(w, lane)
			}
			w.flat[lane*w.nregs+dst] = v
		}
	default:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			execALU(w, in, lane, &ps)
		}
	}
}

// execALU applies the functional semantics of an ALU instruction to one
// lane, reading sources through pre-resolved plans. Division by zero yields
// zero (GPUs do not trap).
func execALU(w *warp, in *kernel.Instr, lane int, ps *[3]srcPlan) {
	ev := func(i int) int64 { return ps[i].eval(w, lane) }
	var v int64
	switch in.Op {
	case kernel.OpMov:
		v = ev(0)
	case kernel.OpAdd:
		v = ev(0) + ev(1)
	case kernel.OpSub:
		v = ev(0) - ev(1)
	case kernel.OpMul:
		v = ev(0) * ev(1)
	case kernel.OpMad:
		v = ev(0)*ev(1) + ev(2)
	case kernel.OpDiv:
		if d := ev(1); d != 0 {
			v = ev(0) / d
		}
	case kernel.OpRem:
		if d := ev(1); d != 0 {
			v = ev(0) % d
		}
	case kernel.OpMin:
		a, b := ev(0), ev(1)
		v = a
		if b < a {
			v = b
		}
	case kernel.OpMax:
		a, b := ev(0), ev(1)
		v = a
		if b > a {
			v = b
		}
	case kernel.OpAnd:
		v = ev(0) & ev(1)
	case kernel.OpOr:
		v = ev(0) | ev(1)
	case kernel.OpXor:
		v = ev(0) ^ ev(1)
	case kernel.OpShl:
		v = ev(0) << uint64(ev(1)&63)
	case kernel.OpShr:
		v = int64(uint64(ev(0)) >> uint64(ev(1)&63))
	case kernel.OpSetLT:
		v = b2i(ev(0) < ev(1))
	case kernel.OpSetLE:
		v = b2i(ev(0) <= ev(1))
	case kernel.OpSetEQ:
		v = b2i(ev(0) == ev(1))
	case kernel.OpSetNE:
		v = b2i(ev(0) != ev(1))
	case kernel.OpSetGT:
		v = b2i(ev(0) > ev(1))
	case kernel.OpSetGE:
		v = b2i(ev(0) >= ev(1))
	case kernel.OpSelp:
		if ev(2) != 0 {
			v = ev(0)
		} else {
			v = ev(1)
		}
	case kernel.OpFAdd:
		v = kernel.F2B(kernel.B2F(ev(0)) + kernel.B2F(ev(1)))
	case kernel.OpFSub:
		v = kernel.F2B(kernel.B2F(ev(0)) - kernel.B2F(ev(1)))
	case kernel.OpFMul:
		v = kernel.F2B(kernel.B2F(ev(0)) * kernel.B2F(ev(1)))
	case kernel.OpFMad:
		v = kernel.F2B(kernel.B2F(ev(0))*kernel.B2F(ev(1)) + kernel.B2F(ev(2)))
	case kernel.OpFDiv:
		if d := kernel.B2F(ev(1)); d != 0 {
			v = kernel.F2B(kernel.B2F(ev(0)) / d)
		}
	case kernel.OpFSqrt:
		v = kernel.F2B(math.Sqrt(math.Abs(kernel.B2F(ev(0)))))
	case kernel.OpFMin:
		v = kernel.F2B(math.Min(kernel.B2F(ev(0)), kernel.B2F(ev(1))))
	case kernel.OpFMax:
		v = kernel.F2B(math.Max(kernel.B2F(ev(0)), kernel.B2F(ev(1))))
	case kernel.OpCvtIF:
		v = kernel.F2B(float64(ev(0)))
	case kernel.OpCvtFI:
		v = int64(kernel.B2F(ev(0)))
	case kernel.OpFSetLT:
		v = b2i(kernel.B2F(ev(0)) < kernel.B2F(ev(1)))
	case kernel.OpFSetLE:
		v = b2i(kernel.B2F(ev(0)) <= kernel.B2F(ev(1)))
	case kernel.OpFSetGT:
		v = b2i(kernel.B2F(ev(0)) > kernel.B2F(ev(1)))
	}
	if in.Dst >= 0 {
		w.regs[lane][in.Dst] = v
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// aluLatency maps an opcode to its execution latency class.
func aluLatency(cfg *Config, op kernel.Op) int {
	switch op {
	case kernel.OpMul, kernel.OpMad, kernel.OpFMul, kernel.OpFMad,
		kernel.OpCvtIF, kernel.OpCvtFI, kernel.OpFAdd, kernel.OpFSub:
		return cfg.MulLatency
	case kernel.OpDiv, kernel.OpRem, kernel.OpFDiv, kernel.OpFSqrt:
		return cfg.SFULatency
	default:
		return cfg.ALULatency
	}
}
