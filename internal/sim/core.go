package sim

import (
	"math"
	"math/bits"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
	"gpushield/internal/memsys"
)

// stackEntry is one SIMT reconvergence-stack record. A divergent branch
// pushes the reconvergence state and the not-taken path; reaching the
// reconvergence PC pops the next entry (the standard TOS scheme).
type stackEntry struct {
	reconvPC int
	pc       int
	mask     uint64
}

// warp is one resident sub-workgroup context.
type warp struct {
	wg     *workgroup
	inWG   int // warp index within the workgroup
	slot   int // index in the owning core's warps / sched arrays
	pc     int
	active uint64         // live, non-exited lanes currently enabled
	exited uint64         // lanes retired via exit
	code   []kernel.Instr // the kernel's instruction stream (fetch shortcut)
	stack  []stackEntry
	regs   [][]int64 // [lane][reg]
	flat   []int64   // the backing array of regs: [lane*nregs + reg]
	nregs  int

	readyAt   uint64
	atBarrier bool
	done      bool

	// sbLeft counts superblock instructions whose functional effects were
	// applied ahead of schedule and whose issues are still owed: while > 0,
	// each selection of this warp is a replay issue (see superblock.go).
	sbLeft int

	// Lowered-superblock cache: operand plans and specialized forms are
	// constant for a warp's lifetime (launch args, workgroup id, and the
	// lane-affine specials are fixed at placement), so every block is
	// lowered at most once per warp. sbIdx is indexed by pc and holds
	// 1+entry-index into sbEnt (0 = not lowered yet); placeWorkgroup
	// clears it when the warp is reused, but the entries' backing arrays
	// survive so steady-state relowering allocates nothing.
	sbIdx []int32
	sbEnt []sbEntry

	// Active-lane cache for execSBFast: register-row offsets and lane
	// indices of the lanes in sbMask, rebuilt only when the active mask
	// diverges from it. sbMask = 0 (placeWorkgroup) forces a rebuild —
	// a warp with no active lanes never reaches the superblock path.
	sbMask  uint64
	sbOffs  []int
	sbLanes []int64

	// Lowered memory-plan cache (the LSU analogue of sbIdx/sbEnt, see
	// memplan.go): mpIdx is indexed by pc and holds 1+entry-index into
	// mpEnt (0 = not lowered yet); placeWorkgroup clears it when the warp
	// is reused, but the entries' backing arrays survive so steady-state
	// relowering allocates nothing.
	mpIdx []int32
	mpEnt []memPlan

	// Dense active-lane cache shared by every memory pc: the lane indices
	// of memMask, rebuilt only when the guard mask diverges from it.
	// memMask = 0 (placeWorkgroup) forces a rebuild — a memory instruction
	// with no active lanes never reaches address generation.
	memMask  uint64
	memLanes []int32
}

// workgroup is one resident thread block.
type workgroup struct {
	run     *kernelRun
	id      int
	warps   []*warp
	shared  []byte
	arrived int // warps waiting at the barrier
	live    int // warps not yet done
}

// coreState is one shader core (SM): warp contexts, private L1D and L1 TLB,
// the LSU occupancy clock, and the bounds-checking unit.
type coreState struct {
	id    int
	gpu   *GPU
	l1d   *memsys.Cache
	l1tlb *memsys.TLB
	bcu   *core.BCU

	wgs   []*workgroup
	warps []*warp
	// sched is the scheduler's struct-of-arrays view of warp issue state,
	// parallel to warps: sched[i] is warp i's next possible issue cycle,
	// with done and at-barrier folded in as farFuture. selectWarp scans
	// only this array (one cache line per eight warps) instead of chasing
	// every warp struct; every mutation of readyAt/done/atBarrier keeps it
	// in sync (see wake).
	sched []uint64
	// wgPool is the core's workgroup arena: retired shells (warp structs,
	// register slabs, shared-memory backing) recycled by placeWorkgroup.
	// Per-core ownership keeps the parallel scheduler race-free; capacity
	// is bounded by MaxWGsPerCore.
	wgPool      []*workgroup
	threadsUsed int
	lsuFreeAt   uint64
	lastWarp    int // greedy-then-oldest cursor
	rrRun       int // round-robin kernel cursor for dispatch

	// intent is the core's phase-A scratch under the parallel scheduler:
	// the chosen instruction plus every shared-state effect it deferred.
	// pend points at intent only while the core-private half of an
	// instruction executes in phase A; helpers that would otherwise touch
	// shared state (run stats, liveWGs, dispatchNeeded, the wake heap)
	// consult it and record into the intent instead. It is nil during
	// serial execution and during the commit phase, so those paths mutate
	// shared state directly, exactly as the serial scheduler always has.
	intent coreIntent
	pend   *coreIntent

	// sbPlans is reusable scratch for superblock bulk execution: one operand
	// plan triple per block instruction (superblock.go).
	sbPlans [][3]srcPlan

	// sPrep is the serial scheduler's memory-instruction scratch: execMem
	// reuses it instead of zeroing a fresh ~1.6KB memPrep per instruction.
	// Safe because memGen overwrites every field a commit reads (only
	// active-lane entries of the big arrays are ever consumed), and the
	// serial path never has two instructions in flight on one core.
	sPrep memPrep
}

// statsFor returns the LaunchStats sink for counters incremented during the
// core-private half of an instruction: the run's stats in serial execution,
// or the core's intent scratch during parallel phase A (the commit phase
// folds the scratch into the run in ascending core-id order, so totals are
// byte-identical to serial accumulation).
func (c *coreState) statsFor(r *kernelRun) *LaunchStats {
	if c.pend != nil {
		return &c.pend.stats
	}
	return r.stats
}

// placeWorkgroup instantiates workgroup wgID of run r on this core, reusing
// a recycled workgroup shell (warp structs, register slabs, shared-memory
// backing) from the core's arena when one with the right warp count is
// available. Recycled register files and shared memory are zeroed before
// reuse: a fresh workgroup must observe exactly the all-zero state a newly
// allocated one would — both for equivalence with the allocating path and so
// one tenant's register or scratchpad contents can never leak into another
// tenant's launch on a shared GPU (the service layer runs many tenants over
// one simulator).
func (c *coreState) placeWorkgroup(r *kernelRun, wgID int, now uint64) {
	l := r.launch
	ww := c.gpu.cfg.WarpWidth
	nw := (l.Block + ww - 1) / ww
	nregs := l.Kernel.NumRegs
	var wg *workgroup
	for i := len(c.wgPool) - 1; i >= 0; i-- {
		if len(c.wgPool[i].warps) == nw {
			wg = c.wgPool[i]
			c.wgPool = append(c.wgPool[:i], c.wgPool[i+1:]...)
			break
		}
	}
	if wg == nil {
		wg = &workgroup{warps: make([]*warp, 0, nw)}
		for wi := 0; wi < nw; wi++ {
			wg.warps = append(wg.warps, &warp{})
		}
	}
	wg.run, wg.id, wg.live, wg.arrived = r, wgID, nw, 0
	if sb := l.Kernel.SharedBytes; sb > 0 {
		if cap(wg.shared) >= sb {
			wg.shared = wg.shared[:sb]
			clear(wg.shared)
		} else {
			wg.shared = make([]byte, sb)
		}
	} else {
		wg.shared = wg.shared[:0]
	}
	for wi, w := range wg.warps {
		var mask uint64
		for lane := 0; lane < ww; lane++ {
			if wi*ww+lane < l.Block {
				mask |= 1 << uint(lane)
			}
		}
		w.wg, w.inWG, w.pc, w.active, w.exited = wg, wi, 0, mask, 0
		w.code = l.Kernel.Code
		w.stack = w.stack[:0]
		w.readyAt, w.atBarrier, w.done = now, false, false
		w.sbLeft, w.sbEnt, w.sbMask = 0, w.sbEnt[:0], 0
		w.mpEnt, w.memMask = w.mpEnt[:0], 0
		if nc := len(l.Kernel.Code); cap(w.sbIdx) >= nc {
			w.sbIdx = w.sbIdx[:nc]
			clear(w.sbIdx)
		} else {
			w.sbIdx = make([]int32, nc)
		}
		if nc := len(l.Kernel.Code); cap(w.mpIdx) >= nc {
			w.mpIdx = w.mpIdx[:nc]
			clear(w.mpIdx)
		} else {
			w.mpIdx = make([]int32, nc)
		}
		n := ww * nregs
		reslice := w.nregs != nregs
		if cap(w.flat) >= n {
			w.flat = w.flat[:n]
			clear(w.flat)
		} else {
			w.flat = make([]int64, n)
			reslice = true
		}
		w.nregs = nregs
		if w.regs == nil {
			w.regs = make([][]int64, ww)
			reslice = true
		}
		if reslice {
			for lane := 0; lane < ww; lane++ {
				w.regs[lane] = w.flat[lane*nregs : (lane+1)*nregs]
			}
		}
		w.slot = len(c.warps)
		c.warps = append(c.warps, w)
		c.sched = append(c.sched, now)
	}
	c.wgs = append(c.wgs, wg)
	c.threadsUsed += l.Block
	// Fresh warps are ready immediately: wake the core.
	c.gpu.wakes.earlier(c.id, now)
}

// removeWorkgroup frees a completed (or aborted) workgroup's resources and
// parks the shell in the core's arena for reuse. The arena is per-core so a
// phase-A retire under the parallel scheduler never races another core's
// placement or retire, and it is capacity-bounded by the core's concurrent-
// workgroup limit (a core can never have retired more shells than it can
// host). The run pointer is dropped so a pooled shell does not keep a
// finished launch alive.
func (c *coreState) removeWorkgroup(wg *workgroup) {
	for i, x := range c.wgs {
		if x == wg {
			c.wgs = append(c.wgs[:i], c.wgs[i+1:]...)
			break
		}
	}
	kept := c.warps[:0]
	sched := c.sched[:0]
	for i, w := range c.warps {
		if w.wg != wg {
			w.slot = len(kept)
			kept = append(kept, w)
			sched = append(sched, c.sched[i])
		}
	}
	c.warps, c.sched = kept, sched
	c.threadsUsed -= wg.run.launch.Block
	if c.lastWarp >= len(c.warps) {
		c.lastWarp = 0
	}
	if len(c.wgPool) < c.gpu.cfg.MaxWGsPerCore {
		wg.run = nil
		c.wgPool = append(c.wgPool, wg)
	}
	// Freed capacity may admit a pending workgroup; run dispatch this step.
	// Under the parallel scheduler the flag is GPU-global shared state, so a
	// phase-A retire defers it to the commit.
	if c.pend != nil {
		c.pend.dispatch = true
	} else {
		c.gpu.dispatchNeeded = true
	}
}

// issuePick is the outcome of one scheduler scan: the chosen warp (w == nil
// when nothing can issue this cycle) and the wake bookkeeping the scan
// computed for free — the earliest future readyAt, or lsuFreeAt for a ready
// warp stalled behind the LSU.
type issuePick struct {
	idx  int
	w    *warp
	in   *kernel.Instr
	next uint64
}

// selectWarp scans for the next instruction to issue without committing to
// it, greedy-then-oldest: the warp issued last keeps priority while it is
// ready, which preserves the RCache temporal locality the paper relies on.
//
// The scan's only mutation is reconvergence-stack normalization, which is
// idempotent — re-running the scan from the same cycle picks the same warp.
// The parallel scheduler's hazard fallback (re-execute the whole cycle on
// the serial path) depends on exactly that property.
func (c *coreState) selectWarp(now uint64) issuePick {
	n := len(c.warps)
	pick := issuePick{idx: -1, next: farFuture}
	sched := c.sched
	idx := c.lastWarp
	for k := 0; k < n; k++ {
		if r := sched[idx]; r > now {
			// Not ready: done and at-barrier warps carry farFuture here and
			// so never advance pick.next.
			if r < pick.next {
				pick.next = r
			}
		} else {
			w := c.warps[idx]
			in := &w.code[w.reconverge()]
			if in.Op.IsMemory() && in.Space != kernel.SpaceShared && c.lsuFreeAt > now {
				if c.lsuFreeAt < pick.next {
					pick.next = c.lsuFreeAt
				}
			} else {
				pick.idx, pick.w, pick.in = idx, w, in
				return pick
			}
		}
		if idx++; idx == n {
			idx = 0
		}
	}
	return pick
}

// wake records the warp's next possible issue cycle in both the warp and the
// scheduler's scan array. Transitions of done/atBarrier maintain the array
// directly (farFuture while blocked).
func (c *coreState) wake(w *warp, t uint64) {
	w.readyAt = t
	c.sched[w.slot] = t
}

// tryIssue issues at most one instruction on this core at cycle now.
//
// It also maintains the core's wake time. On an issue the core may issue
// again next cycle, so the wake moves to now+1. On a failed scan the pass
// has already seen every warp, so the exact next opportunity is recorded
// for free; until then the scheduler never looks at this core.
func (c *coreState) tryIssue(now uint64) bool {
	p := c.selectWarp(now)
	if p.w == nil {
		c.gpu.wakes.set(c.id, p.next)
		return false
	}
	c.lastWarp = p.idx
	c.execute(p.w, p.in, now)
	c.gpu.wakes.set(c.id, now+1)
	return true
}

// reconverge pops reconvergence-stack entries whose point the warp reached
// and returns the (possibly updated) PC.
func (w *warp) reconverge() int {
	for len(w.stack) > 0 {
		top := w.stack[len(w.stack)-1]
		if w.pc != top.reconvPC {
			break
		}
		w.stack = w.stack[:len(w.stack)-1]
		w.pc = top.pc
		w.active = top.mask &^ w.exited
	}
	return w.pc
}

// guardMask returns the lanes that execute the instruction: active lanes
// whose guard register (if any) passes.
func (w *warp) guardMask(in *kernel.Instr) uint64 {
	if in.Pred < 0 {
		return w.active
	}
	var m uint64
	for lanes := w.active; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		v := w.flat[lane*w.nregs+in.Pred] != 0
		if v != in.PNeg {
			m |= 1 << uint(lane)
		}
	}
	return m
}

// execute runs one warp instruction: functional semantics plus timing.
func (c *coreState) execute(w *warp, in *kernel.Instr, now uint64) {
	if w.sbLeft > 0 {
		// Replay issue of a pre-executed superblock instruction: timing and
		// stats only, the arithmetic already happened at block entry.
		c.replayIssue(w, in, now)
		return
	}
	r := w.wg.run
	st := c.statsFor(r)
	gmask := w.guardMask(in)
	st.WarpInstrs++
	st.ThreadInstrs += uint64(bits.OnesCount64(gmask))

	switch {
	case in.Op.IsMemory():
		c.execMem(w, in, gmask, now)
		return

	case in.Op == kernel.OpBar:
		w.pc++
		w.atBarrier = true
		c.sched[w.slot] = farFuture
		w.wg.arrived++
		c.releaseBarrier(w.wg, now)
		return

	case in.Op == kernel.OpExit:
		w.exited |= gmask
		w.active &^= gmask
		w.pc++
		if w.active == 0 {
			// Resume any outstanding paths; otherwise the warp retires.
			for len(w.stack) > 0 && w.active == 0 {
				top := w.stack[len(w.stack)-1]
				w.stack = w.stack[:len(w.stack)-1]
				w.pc = top.pc
				w.active = top.mask &^ w.exited
			}
			if w.active == 0 {
				c.retireWarp(w, now)
				return
			}
		}
		c.wake(w, now+1)
		return

	case in.Op.IsBranch():
		c.execBranch(w, in, gmask, now)
		return
	}

	// ALU path. An unpredicated ALU instruction that begins a pre-decoded
	// superblock executes the whole block's arithmetic now; this issue then
	// completes normally and the rest of the block replays (superblock.go).
	if lens := r.sbLens; lens != nil && lens[w.pc] >= sbMinLen {
		c.execSuperblock(w, int(lens[w.pc]), now)
	} else {
		c.execALUWarp(w, in, gmask)
	}
	w.pc++
	c.wake(w, now+uint64(c.gpu.aluLat[in.Op]))
}

// retireWarp marks the warp done and completes its workgroup when it was
// the last one.
func (c *coreState) retireWarp(w *warp, now uint64) {
	if w.done {
		return
	}
	w.done = true
	c.sched[w.slot] = farFuture
	wg := w.wg
	wg.live--
	c.releaseBarrier(wg, now)
	if wg.live == 0 {
		// Capture the run first: removeWorkgroup may park the shell in the
		// arena, which drops its run pointer.
		run := wg.run
		c.removeWorkgroup(wg)
		// The live-workgroup count is owned by the run (shared across
		// cores); a phase-A retire defers the decrement to the commit.
		if c.pend != nil {
			c.pend.retired = run
		} else {
			run.liveWGs--
		}
	}
}

// releaseBarrier opens the workgroup barrier once every live warp arrived.
func (c *coreState) releaseBarrier(wg *workgroup, now uint64) {
	if wg.live == 0 || wg.arrived < wg.live {
		return
	}
	wg.arrived = 0
	for _, w := range wg.warps {
		if !w.done && w.atBarrier {
			w.atBarrier = false
			c.wake(w, now+1)
		}
	}
	// Released warps are ready next cycle; wake the core for them. A
	// release can only happen inside an issuing execute, whose caller
	// (tryIssue serially, the commit phase in parallel) re-arms the core at
	// now+1 unconditionally — so in phase A, where the heap is shared, the
	// call is simply skipped rather than deferred.
	if c.pend == nil {
		c.gpu.wakes.earlier(c.id, now+1)
	}
}

func (c *coreState) execBranch(w *warp, in *kernel.Instr, gmask uint64, now uint64) {
	cfg := &c.gpu.cfg
	c.wake(w, now+uint64(cfg.ALULatency))
	switch in.Op {
	case kernel.OpBraUni:
		w.pc = in.Label
	case kernel.OpBraAny:
		if gmask != 0 {
			w.pc = in.Label
		} else {
			w.pc++
		}
	case kernel.OpBraAll:
		if gmask == w.active && w.active != 0 {
			w.pc = in.Label
		} else {
			w.pc++
		}
	case kernel.OpBraDiv:
		taken := gmask
		switch {
		case taken == w.active:
			w.pc = in.Label
		case taken == 0:
			w.pc++
		default:
			// Push reconvergence state, then the fall-through path; execute
			// the taken path first.
			w.stack = append(w.stack,
				stackEntry{reconvPC: in.Reconv, pc: in.Reconv, mask: w.active},
				stackEntry{reconvPC: in.Reconv, pc: w.pc + 1, mask: w.active &^ taken},
			)
			w.active = taken
			w.pc = in.Label
		}
	}
}

// srcPlan is a source operand resolved once per warp instruction instead of
// once per lane. Every operand kind is either a per-lane register read
// (reg >= 0) or an affine function of the lane id, base + slope*lane:
// immediates and params are lane-invariant (slope 0), and each special
// register is affine by construction (tid = inWG*ww + lane, etc.).
type srcPlan struct {
	reg   int
	base  int64
	slope int64
}

func (p *srcPlan) eval(w *warp, lane int) int64 {
	if p.reg >= 0 {
		return w.flat[lane*w.nregs+p.reg]
	}
	return p.base + p.slope*int64(lane)
}

// plan resolves one operand of w's current instruction into a srcPlan. It
// must agree exactly with operand()/special() — the golden-stats tests lock
// that equivalence.
func (c *coreState) plan(w *warp, op kernel.Operand) srcPlan {
	switch op.Kind {
	case kernel.OperandReg:
		return srcPlan{reg: op.Reg}
	case kernel.OperandImm:
		return srcPlan{reg: -1, base: op.Imm}
	case kernel.OperandParam:
		return srcPlan{reg: -1, base: int64(w.wg.run.launch.Args[op.Param])}
	case kernel.OperandSpecial:
		l := w.wg.run.launch
		switch op.Special {
		case kernel.SpecTIDX:
			return srcPlan{reg: -1, base: int64(w.inWG * c.gpu.cfg.WarpWidth), slope: 1}
		case kernel.SpecCTAIDX:
			return srcPlan{reg: -1, base: int64(w.wg.id)}
		case kernel.SpecNTIDX:
			return srcPlan{reg: -1, base: int64(l.Block)}
		case kernel.SpecNTIDY, kernel.SpecNCTAIDY:
			return srcPlan{reg: -1, base: 1}
		case kernel.SpecNCTAIDX:
			return srcPlan{reg: -1, base: int64(l.Grid)}
		case kernel.SpecLaneID:
			return srcPlan{reg: -1, slope: 1}
		case kernel.SpecWarpID:
			return srcPlan{reg: -1, base: int64(w.inWG)}
		case kernel.SpecGlobalTID:
			return srcPlan{reg: -1,
				base:  int64(w.wg.id)*int64(l.Block) + int64(w.inWG*c.gpu.cfg.WarpWidth),
				slope: 1}
		case kernel.SpecGlobalSize:
			return srcPlan{reg: -1, base: int64(l.Grid) * int64(l.Block)}
		}
		return srcPlan{reg: -1} // SpecTIDY, SpecCTAIDY, unknown
	}
	return srcPlan{reg: -1} // OperandNone
}

// operand evaluates one source operand for a lane.
func (c *coreState) operand(w *warp, op kernel.Operand, lane int) int64 {
	switch op.Kind {
	case kernel.OperandReg:
		return w.regs[lane][op.Reg]
	case kernel.OperandImm:
		return op.Imm
	case kernel.OperandParam:
		return int64(w.wg.run.launch.Args[op.Param])
	case kernel.OperandSpecial:
		return c.special(w, op.Special, lane)
	}
	return 0
}

func (c *coreState) special(w *warp, s kernel.Special, lane int) int64 {
	l := w.wg.run.launch
	ww := c.gpu.cfg.WarpWidth
	tid := int64(w.inWG*ww + lane)
	switch s {
	case kernel.SpecTIDX:
		return tid
	case kernel.SpecTIDY, kernel.SpecCTAIDY:
		return 0
	case kernel.SpecCTAIDX:
		return int64(w.wg.id)
	case kernel.SpecNTIDX:
		return int64(l.Block)
	case kernel.SpecNTIDY, kernel.SpecNCTAIDY:
		return 1
	case kernel.SpecNCTAIDX:
		return int64(l.Grid)
	case kernel.SpecLaneID:
		return int64(lane)
	case kernel.SpecWarpID:
		return int64(w.inWG)
	case kernel.SpecGlobalTID:
		return int64(w.wg.id)*int64(l.Block) + tid
	case kernel.SpecGlobalSize:
		return int64(l.Grid) * int64(l.Block)
	}
	return 0
}

// execALUWarp executes one ALU instruction across all guarded lanes.
// Operands are resolved once per warp instruction (srcPlan), and for the
// common integer opcodes the opcode itself is dispatched once per warp with
// a dedicated lane loop, so the per-lane work is just operand reads and the
// arithmetic. Rare opcodes (divides, floating point, converts) fall back to
// the per-lane interpreter, which is the semantic reference.
func (c *coreState) execALUWarp(w *warp, in *kernel.Instr, gmask uint64) {
	var ps [3]srcPlan
	ps[0] = c.plan(w, in.Src[0])
	ps[1] = c.plan(w, in.Src[1])
	ps[2] = c.plan(w, in.Src[2])
	c.execALUWarpPlanned(w, in, gmask, &ps)
}

// execALUWarpPlanned is execALUWarp with the operand plans already resolved;
// superblock bulk execution resolves all plans up front and calls this per
// block instruction.
func (c *coreState) execALUWarpPlanned(w *warp, in *kernel.Instr, gmask uint64, ps *[3]srcPlan) {
	dst := in.Dst
	if dst < 0 {
		// Destination-less integer ALU ops have no architectural effect;
		// keep the reference path for exactness.
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			execALU(w, in, lane, ps)
		}
		return
	}
	switch in.Op {
	case kernel.OpMov:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane)
		}
	case kernel.OpAdd:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) + ps[1].eval(w, lane)
		}
	case kernel.OpSub:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) - ps[1].eval(w, lane)
		}
	case kernel.OpMul:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) * ps[1].eval(w, lane)
		}
	case kernel.OpMad:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane)*ps[1].eval(w, lane) + ps[2].eval(w, lane)
		}
	case kernel.OpMin:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			a, b := ps[0].eval(w, lane), ps[1].eval(w, lane)
			if b < a {
				a = b
			}
			w.flat[lane*w.nregs+dst] = a
		}
	case kernel.OpMax:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			a, b := ps[0].eval(w, lane), ps[1].eval(w, lane)
			if b > a {
				a = b
			}
			w.flat[lane*w.nregs+dst] = a
		}
	case kernel.OpAnd:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) & ps[1].eval(w, lane)
		}
	case kernel.OpOr:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) | ps[1].eval(w, lane)
		}
	case kernel.OpXor:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) ^ ps[1].eval(w, lane)
		}
	case kernel.OpShl:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = ps[0].eval(w, lane) << uint64(ps[1].eval(w, lane)&63)
		}
	case kernel.OpShr:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = int64(uint64(ps[0].eval(w, lane)) >> uint64(ps[1].eval(w, lane)&63))
		}
	case kernel.OpSetLT:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) < ps[1].eval(w, lane))
		}
	case kernel.OpSetLE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) <= ps[1].eval(w, lane))
		}
	case kernel.OpSetEQ:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) == ps[1].eval(w, lane))
		}
	case kernel.OpSetNE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) != ps[1].eval(w, lane))
		}
	case kernel.OpSetGT:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) > ps[1].eval(w, lane))
		}
	case kernel.OpSetGE:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			w.flat[lane*w.nregs+dst] = b2i(ps[0].eval(w, lane) >= ps[1].eval(w, lane))
		}
	case kernel.OpSelp:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			v := ps[1].eval(w, lane)
			if ps[2].eval(w, lane) != 0 {
				v = ps[0].eval(w, lane)
			}
			w.flat[lane*w.nregs+dst] = v
		}
	default:
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			execALU(w, in, lane, ps)
		}
	}
}

// execALU applies the functional semantics of an ALU instruction to one
// lane, reading sources through pre-resolved plans. Division by zero yields
// zero (GPUs do not trap).
func execALU(w *warp, in *kernel.Instr, lane int, ps *[3]srcPlan) {
	ev := func(i int) int64 { return ps[i].eval(w, lane) }
	var v int64
	switch in.Op {
	case kernel.OpMov:
		v = ev(0)
	case kernel.OpAdd:
		v = ev(0) + ev(1)
	case kernel.OpSub:
		v = ev(0) - ev(1)
	case kernel.OpMul:
		v = ev(0) * ev(1)
	case kernel.OpMad:
		v = ev(0)*ev(1) + ev(2)
	case kernel.OpDiv:
		if d := ev(1); d != 0 {
			v = ev(0) / d
		}
	case kernel.OpRem:
		if d := ev(1); d != 0 {
			v = ev(0) % d
		}
	case kernel.OpMin:
		a, b := ev(0), ev(1)
		v = a
		if b < a {
			v = b
		}
	case kernel.OpMax:
		a, b := ev(0), ev(1)
		v = a
		if b > a {
			v = b
		}
	case kernel.OpAnd:
		v = ev(0) & ev(1)
	case kernel.OpOr:
		v = ev(0) | ev(1)
	case kernel.OpXor:
		v = ev(0) ^ ev(1)
	case kernel.OpShl:
		v = ev(0) << uint64(ev(1)&63)
	case kernel.OpShr:
		v = int64(uint64(ev(0)) >> uint64(ev(1)&63))
	case kernel.OpSetLT:
		v = b2i(ev(0) < ev(1))
	case kernel.OpSetLE:
		v = b2i(ev(0) <= ev(1))
	case kernel.OpSetEQ:
		v = b2i(ev(0) == ev(1))
	case kernel.OpSetNE:
		v = b2i(ev(0) != ev(1))
	case kernel.OpSetGT:
		v = b2i(ev(0) > ev(1))
	case kernel.OpSetGE:
		v = b2i(ev(0) >= ev(1))
	case kernel.OpSelp:
		if ev(2) != 0 {
			v = ev(0)
		} else {
			v = ev(1)
		}
	case kernel.OpFAdd:
		v = kernel.F2B(kernel.B2F(ev(0)) + kernel.B2F(ev(1)))
	case kernel.OpFSub:
		v = kernel.F2B(kernel.B2F(ev(0)) - kernel.B2F(ev(1)))
	case kernel.OpFMul:
		v = kernel.F2B(kernel.B2F(ev(0)) * kernel.B2F(ev(1)))
	case kernel.OpFMad:
		v = kernel.F2B(kernel.B2F(ev(0))*kernel.B2F(ev(1)) + kernel.B2F(ev(2)))
	case kernel.OpFDiv:
		if d := kernel.B2F(ev(1)); d != 0 {
			v = kernel.F2B(kernel.B2F(ev(0)) / d)
		}
	case kernel.OpFSqrt:
		v = kernel.F2B(math.Sqrt(math.Abs(kernel.B2F(ev(0)))))
	case kernel.OpFMin:
		v = kernel.F2B(math.Min(kernel.B2F(ev(0)), kernel.B2F(ev(1))))
	case kernel.OpFMax:
		v = kernel.F2B(math.Max(kernel.B2F(ev(0)), kernel.B2F(ev(1))))
	case kernel.OpCvtIF:
		v = kernel.F2B(float64(ev(0)))
	case kernel.OpCvtFI:
		v = int64(kernel.B2F(ev(0)))
	case kernel.OpFSetLT:
		v = b2i(kernel.B2F(ev(0)) < kernel.B2F(ev(1)))
	case kernel.OpFSetLE:
		v = b2i(kernel.B2F(ev(0)) <= kernel.B2F(ev(1)))
	case kernel.OpFSetGT:
		v = b2i(kernel.B2F(ev(0)) > kernel.B2F(ev(1)))
	}
	if in.Dst >= 0 {
		w.regs[lane][in.Dst] = v
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// aluLatency maps an opcode to its execution latency class.
func aluLatency(cfg *Config, op kernel.Op) int {
	switch op {
	case kernel.OpMul, kernel.OpMad, kernel.OpFMul, kernel.OpFMad,
		kernel.OpCvtIF, kernel.OpCvtFI, kernel.OpFAdd, kernel.OpFSub:
		return cfg.MulLatency
	case kernel.OpDiv, kernel.OpRem, kernel.OpFDiv, kernel.OpFSqrt:
		return cfg.SFULatency
	default:
		return cfg.ALULatency
	}
}
