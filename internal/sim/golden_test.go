package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpushield/internal/compiler"
	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// Regenerate with: go test ./internal/sim -run TestGoldenLaunchStats -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden LaunchStats files")

// buildMixedGolden exercises every scheduler path in one kernel: global
// loads, shared-memory staging, a workgroup barrier, divergent predicated
// stores, and same-address atomics.
func buildMixedGolden(t testing.TB) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("mixed")
	in := b.BufferParam("in", true)
	out := b.BufferParam("out", false)
	cnt := b.BufferParam("cnt", false)
	sh := b.Shared(256 * 4)
	tid := b.TID()
	gtid := b.GlobalTID()
	v := b.LoadGlobal(b.AddScaled(in, gtid, 4), 4)
	b.StoreShared(b.AddScaled(kernel.Imm(sh), tid, 4), v, 4)
	b.Barrier()
	sv := b.LoadShared(b.AddScaled(kernel.Imm(sh), b.Sub(kernel.Imm(255), tid), 4), 4)
	even := b.SetEQ(b.And(tid, kernel.Imm(1)), kernel.Imm(0))
	b.If(even, func() {
		b.StoreGlobal(b.AddScaled(out, gtid, 4), b.Add(sv, v), 4)
	})
	b.AtomAddGlobal(b.AddScaled(cnt, b.And(gtid, kernel.Imm(7)), 4), kernel.Imm(1), 4)
	return b.MustBuild()
}

// buildSpinGolden loops forever, for the watchdog-abort golden.
func buildSpinGolden(t testing.TB) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("spin")
	p := b.BufferParam("p", false)
	b.WhileAny(func() kernel.Operand { return b.SetLT(kernel.Imm(0), kernel.Imm(1)) }, func() {
		b.StoreGlobal(b.AddScaled(p, b.TID(), 4), kernel.Imm(1), 4)
	})
	return b.MustBuild()
}

type goldenRecord struct {
	Name  string
	Stats []*LaunchStats
	Err   string
}

// TestGoldenLaunchStats locks per-launch LaunchStats byte-for-byte against
// goldens recorded on the pre-event-driven (scan-every-cycle) simulator, so
// scheduler rewrites can prove they change performance, not results.
func TestGoldenLaunchStats(t *testing.T) {
	prep := func(t *testing.T, dev *driver.Device, k *kernel.Kernel, grid, block int, args []driver.Arg, mode driver.Mode, an *compiler.Analysis) *driver.Launch {
		t.Helper()
		l, err := dev.PrepareLaunch(k, grid, block, args, mode, an)
		if err != nil {
			t.Fatalf("prepare %s: %v", k.Name, err)
		}
		return l
	}
	vecAddArgs := func(t *testing.T, dev *driver.Device, n int) []driver.Arg {
		t.Helper()
		ba := dev.Malloc("a", uint64(n*4), true)
		bb := dev.Malloc("b", uint64(n*4), true)
		bc := dev.Malloc("c", uint64(n*4), false)
		for i := 0; i < n; i++ {
			dev.WriteUint32(ba, i, uint32(i))
			dev.WriteUint32(bb, i, uint32(2*i))
		}
		return []driver.Arg{driver.BufArg(ba), driver.BufArg(bb), driver.BufArg(bc), driver.ScalarArg(int64(n))}
	}
	mixedArgs := func(t *testing.T, dev *driver.Device, n int) []driver.Arg {
		t.Helper()
		bi := dev.Malloc("in", uint64(n*4), true)
		bo := dev.Malloc("out", uint64(n*4), false)
		bcnt := dev.Malloc("cnt", 64, false)
		for i := 0; i < n; i++ {
			dev.WriteUint32(bi, i, uint32(7*i+3))
		}
		return []driver.Arg{driver.BufArg(bi), driver.BufArg(bo), driver.BufArg(bcnt)}
	}

	var records []goldenRecord
	record := func(name string, stats []*LaunchStats, err error) {
		r := goldenRecord{Name: name, Stats: stats}
		if err != nil {
			r.Err = err.Error()
		}
		records = append(records, r)
	}

	// Single-kernel runs across the three protection modes.
	for _, mode := range []driver.Mode{driver.ModeOff, driver.ModeShield, driver.ModeShieldStatic} {
		k := buildVecAdd(t)
		dev := driver.NewDevice(7)
		const n = 1000
		args := vecAddArgs(t, dev, n)
		var an *compiler.Analysis
		if mode == driver.ModeShieldStatic {
			var err error
			an, err = compiler.Analyze(k, compiler.LaunchInfo{
				Block: 128, Grid: 8,
				BufferBytes: []uint64{n * 4, n * 4, n * 4, 0},
				ScalarVal:   []int64{0, 0, 0, n},
				ScalarKnown: []bool{false, false, false, true},
			})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
		}
		cfg := NvidiaConfig()
		if mode != driver.ModeOff {
			cfg = cfg.WithShield(core.DefaultBCUConfig())
		}
		gpu := New(cfg, dev)
		gpu.TrackPages(true)
		st, err := gpu.Run(prep(t, dev, k, 8, 128, args, mode, an))
		record("vecadd/"+mode.String(), []*LaunchStats{st}, err)
	}

	// Mixed kernel (shared memory, barrier, divergence, atomics), shield.
	{
		dev := driver.NewDevice(7)
		gpu := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev)
		st, err := gpu.Run(prep(t, dev, buildMixedGolden(t), 12, 256, mixedArgs(t, dev, 12*256), driver.ModeShield, nil))
		record("mixed/shield", []*LaunchStats{st}, err)
	}

	// Concurrent kernels under both sharing modes, plus back-to-back reuse
	// of one GPU (locks cross-launch cache/heap warm-up effects).
	for _, share := range []ShareMode{ShareInterCore, ShareIntraCore} {
		dev := driver.NewDevice(7)
		const n = 1000
		la := prep(t, dev, buildVecAdd(t), 8, 128, vecAddArgs(t, dev, n), driver.ModeShield, nil)
		lb := prep(t, dev, buildMixedGolden(t), 12, 256, mixedArgs(t, dev, 12*256), driver.ModeShield, nil)
		gpu := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev)
		st, err := gpu.RunConcurrent([]*driver.Launch{la, lb}, share)
		record("concurrent/"+share.String(), st, err)
		st2, err2 := gpu.RunConcurrent([]*driver.Launch{
			prep(t, dev, buildVecAdd(t), 8, 128, vecAddArgs(t, dev, n), driver.ModeShield, nil),
		}, share)
		record("concurrent/"+share.String()+"/rerun", st2, err2)
	}

	// Intel configuration (16-wide warps, different core count).
	{
		dev := driver.NewDevice(7)
		gpu := New(IntelConfig().WithShield(core.DefaultBCUConfig()), dev)
		st, err := gpu.Run(prep(t, dev, buildMixedGolden(t), 12, 256, mixedArgs(t, dev, 12*256), driver.ModeShield, nil))
		record("mixed/intel", []*LaunchStats{st}, err)
	}

	// Watchdog abort: locks the exact abort cycle of the budget path.
	{
		dev := driver.NewDevice(7)
		buf := dev.Malloc("p", 4096, false)
		cfg := NvidiaConfig()
		cfg.MaxCycles = 4096
		gpu := New(cfg, dev)
		st, err := gpu.Run(prep(t, dev, buildSpinGolden(t), 2, 64, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil))
		record("watchdog/spin", []*LaunchStats{st}, err)
	}

	got, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_launchstats.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records)", path, len(records))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		var old []goldenRecord
		if err := json.Unmarshal(want, &old); err != nil {
			t.Fatalf("golden file corrupt: %v", err)
		}
		for i := range records {
			if i >= len(old) {
				t.Fatalf("golden mismatch: extra record %q", records[i].Name)
			}
			g, _ := json.Marshal(records[i])
			w, _ := json.Marshal(old[i])
			if !bytes.Equal(g, w) {
				t.Errorf("golden mismatch at %q:\n got: %s\nwant: %s", records[i].Name, g, w)
			}
		}
		if !t.Failed() {
			t.Fatalf("golden mismatch (record count or trailing bytes)")
		}
	}
}
