package sim

import (
	"fmt"
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
	"gpushield/internal/memsys"
)

// Microbenchmarks for the simulator's own hot paths (the host-side cost of
// simulating, not the simulated machine's performance). BENCH_PR3.json
// tracks these from PR 3 onward; `make bench-json` regenerates it.

// BenchmarkWarpIssueThroughput measures the scheduler's per-issue overhead
// with a deliberately low-occupancy ALU kernel: two workgroups on a 16-core
// GPU leave 14 cores idle, so a scan-everything scheduler pays for all 16
// every cycle while an event-driven one touches only the two that can issue.
func BenchmarkWarpIssueThroughput(b *testing.B) {
	kb := kernel.NewBuilder("warpissue")
	p := kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	acc := kb.Mov(gtid)
	kb.ForRange(kernel.Imm(0), kernel.Imm(256), kernel.Imm(1), func(i kernel.Operand) {
		kb.MovTo(acc, kb.Add(kb.Mul(acc, kernel.Imm(3)), i))
	})
	kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
	k := kb.MustBuild()

	// Device and GPU are built once: the loop measures the per-launch path
	// (driver prep + simulation), not constructor cost.
	dev := driver.NewDevice(1)
	buf := dev.Malloc("p", 2*64*4, false)
	gpu := New(NvidiaConfig(), dev)
	var instrs, cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := dev.PrepareLaunch(k, 2, 64, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
		if err != nil {
			b.Fatal(err)
		}
		st, err := gpu.Run(l)
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.WarpInstrs
		cycles += st.Cycles()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "warp-instrs/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/sim-cycle")
}

// BenchmarkMemInstrThroughput measures the global-memory instruction path —
// AGU, coalescing, cache/TLB timing, functional loads and stores — on a
// streaming kernel that keeps every core busy, with and without the BCU.
func BenchmarkMemInstrThroughput(b *testing.B) {
	build := func() *kernel.Kernel {
		kb := kernel.NewBuilder("memstream")
		p := kb.BufferParam("p", false)
		gtid := kb.GlobalTID()
		acc := kb.Mov(kernel.Imm(0))
		kb.ForRange(kernel.Imm(0), kernel.Imm(32), kernel.Imm(1), func(i kernel.Operand) {
			idx := kb.And(kb.Add(gtid, kb.Mul(i, kernel.Imm(512))), kernel.Imm(16383))
			v := kb.LoadGlobal(kb.AddScaled(p, idx, 4), 4)
			kb.MovTo(acc, kb.Add(acc, v))
		})
		kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
		return kb.MustBuild()
	}
	const n = 16384
	for _, shield := range []bool{false, true} {
		name := "off"
		if shield {
			name = "shield"
		}
		b.Run(name, func(b *testing.B) {
			k := build()
			dev := driver.NewDevice(1)
			buf := dev.Malloc("p", n*4, false)
			mode := driver.ModeOff
			cfg := NvidiaConfig()
			if shield {
				mode = driver.ModeShield
				cfg = cfg.WithShield(core.DefaultBCUConfig())
			}
			gpu := New(cfg, dev)
			var mem, cycles uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := dev.PrepareLaunch(k, n/256, 256, []driver.Arg{driver.BufArg(buf)}, mode, nil)
				if err != nil {
					b.Fatal(err)
				}
				st, err := gpu.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				mem += st.MemInstrs
				cycles += st.Cycles()
			}
			b.ReportMetric(float64(mem)/b.Elapsed().Seconds(), "mem-instrs/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/sim-cycle")
		})
	}
}

// BenchmarkMemPlanPaths crosses the two addressing methods the memory-plan
// cache distinguishes — Method B (full tagged address materialised in a
// register, LoadGlobal) and Method C (parameter base + register offset,
// LoadGlobalOfs) — with the three stride classes the planner recognises:
// unit-stride (dense lines, batched functional path), strided (arithmetic
// line walk with dedup) and indirect (hashed indices; classification fails
// and the reference coalescer replays). All six run under the BCU so the
// verdict-cache hit path is on the measured path.
func BenchmarkMemPlanPaths(b *testing.B) {
	const n = 16384
	build := func(method string, pattern string) *kernel.Kernel {
		kb := kernel.NewBuilder("memplan-" + method + "-" + pattern)
		p := kb.BufferParam("p", false)
		gtid := kb.GlobalTID()
		acc := kb.Mov(kernel.Imm(0))
		kb.ForRange(kernel.Imm(0), kernel.Imm(16), kernel.Imm(1), func(i kernel.Operand) {
			var idx kernel.Operand
			switch pattern {
			case "unit":
				// Adjacent lanes touch adjacent words: stride == bytes.
				idx = kb.And(kb.Add(gtid, kb.Mul(i, kernel.Imm(512))), kernel.Imm(n-1))
			case "strided":
				// Adjacent lanes are 4 words apart: monotone, stride 16B.
				idx = kb.And(kb.Add(kb.Mul(gtid, kernel.Imm(4)), i), kernel.Imm(n-1))
			default: // indirect
				// Hashed index: non-monotone per lane, defeats the
				// arithmetic coalescers.
				idx = kb.And(kb.Mul(kb.Add(gtid, i), kernel.Imm(2654435761)), kernel.Imm(n-1))
			}
			var v kernel.Operand
			if method == "B" {
				v = kb.LoadGlobal(kb.AddScaled(p, idx, 4), 4)
			} else {
				v = kb.LoadGlobalOfs(p, kb.Mul(idx, kernel.Imm(4)), 4)
			}
			kb.MovTo(acc, kb.Add(acc, v))
		})
		if method == "B" {
			kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
		} else {
			kb.StoreGlobalOfs(p, kb.Mul(gtid, kernel.Imm(4)), acc, 4)
		}
		return kb.MustBuild()
	}
	for _, method := range []string{"B", "C"} {
		for _, pattern := range []string{"unit", "strided", "indirect"} {
			b.Run(method+"/"+pattern, func(b *testing.B) {
				k := build(method, pattern)
				dev := driver.NewDevice(1)
				buf := dev.Malloc("p", n*4, false)
				gpu := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev)
				var mem uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l, err := dev.PrepareLaunch(k, n/256, 256, []driver.Arg{driver.BufArg(buf)}, driver.ModeShield, nil)
					if err != nil {
						b.Fatal(err)
					}
					st, err := gpu.Run(l)
					if err != nil {
						b.Fatal(err)
					}
					mem += st.MemInstrs
				}
				b.ReportMetric(float64(mem)/b.Elapsed().Seconds(), "mem-instrs/s")
			})
		}
	}
}

// BenchmarkFunctionalMemPath measures the steady-state functional load/store
// path in isolation: one op is one store + one load against the sparse
// backing store. The zero-allocation criterion for PR 3 is asserted here
// (allocs/op must be ~0 once the backing store stops round-tripping through
// intermediate slices).
func BenchmarkFunctionalMemPath(b *testing.B) {
	mem := memsys.NewBacking()
	in := &kernel.Instr{Op: kernel.OpLd, Bytes: 4, Dst: 0, Pred: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i&4095) * 4
		storeValue(mem, addr, in, int64(i))
		if got := loadValue(mem, addr, in); got != int64(int32(i)) {
			b.Fatalf("round trip: got %d want %d", got, int64(int32(i)))
		}
	}
}

// BenchmarkBackingReadUint isolates the raw backing-store scalar read, the
// innermost call of every functional memory access.
func BenchmarkBackingReadUint(b *testing.B) {
	mem := memsys.NewBacking()
	mem.WriteUint64(0, 0x0123456789abcdef)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += mem.ReadUint(uint64(i&8191)*8, 8)
	}
	_ = sink
}

// BenchmarkCoreParallelLaunch measures one large ALU-heavy launch that keeps
// every core busy, at core-stepping widths 1/2/4/8. Width 1 is the serial
// scheduler (its number guards against two-phase overhead leaking into the
// default path); wider runs demonstrate the wall-clock scaling of the
// two-phase protocol on multi-CPU hosts. Results are identical at every
// width — only sim-cycles/s moves.
func BenchmarkCoreParallelLaunch(b *testing.B) {
	build := func() *kernel.Kernel {
		kb := kernel.NewBuilder("corepar")
		p := kb.BufferParam("p", false)
		gtid := kb.GlobalTID()
		acc := kb.Mov(gtid)
		kb.ForRange(kernel.Imm(0), kernel.Imm(512), kernel.Imm(1), func(i kernel.Operand) {
			kb.MovTo(acc, kb.Add(kb.Mul(acc, kernel.Imm(3)), i))
		})
		kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
		return kb.MustBuild()
	}
	const grid, block = 64, 256
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			k := build()
			dev := driver.NewDevice(1)
			buf := dev.Malloc("p", grid*block*4, false)
			cfg := NvidiaConfig()
			cfg.CoreParallel = w
			gpu := New(cfg, dev)
			var cycles uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := dev.PrepareLaunch(k, grid, block, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
				if err != nil {
					b.Fatal(err)
				}
				st, err := gpu.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles()
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}
