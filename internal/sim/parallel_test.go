package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// parVecAddArgs mirrors the golden test's vecadd inputs so the equivalence
// scenarios run the same launches the goldens lock.
func parVecAddArgs(t testing.TB, dev *driver.Device, n int) []driver.Arg {
	t.Helper()
	ba := dev.Malloc("a", uint64(n*4), true)
	bb := dev.Malloc("b", uint64(n*4), true)
	bc := dev.Malloc("c", uint64(n*4), false)
	for i := 0; i < n; i++ {
		dev.WriteUint32(ba, i, uint32(i))
		dev.WriteUint32(bb, i, uint32(2*i))
	}
	return []driver.Arg{driver.BufArg(ba), driver.BufArg(bb), driver.BufArg(bc), driver.ScalarArg(int64(n))}
}

func parMixedArgs(t testing.TB, dev *driver.Device, n int) []driver.Arg {
	t.Helper()
	bi := dev.Malloc("in", uint64(n*4), true)
	bo := dev.Malloc("out", uint64(n*4), false)
	bcnt := dev.Malloc("cnt", 64, false)
	for i := 0; i < n; i++ {
		dev.WriteUint32(bi, i, uint32(7*i+3))
	}
	return []driver.Arg{driver.BufArg(bi), driver.BufArg(bo), driver.BufArg(bcnt)}
}

func parPrep(t testing.TB, dev *driver.Device, k *kernel.Kernel, grid, block int, args []driver.Arg, mode driver.Mode) *driver.Launch {
	t.Helper()
	l, err := dev.PrepareLaunch(k, grid, block, args, mode, nil)
	if err != nil {
		t.Fatalf("prepare %s: %v", k.Name, err)
	}
	return l
}

// TestCoreParallelEquivalence is the determinism oracle for the two-phase
// scheduler: for every share mode and BCU setting, the concurrent
// vecadd+mixed scenario must produce LaunchStats deep-equal to the serial
// scheduler's at every core-stepping width. No tolerance — identical bytes.
func TestCoreParallelEquivalence(t *testing.T) {
	widths := []int{1, 2, 8}
	runAt := func(t *testing.T, width int, share ShareMode, bcu bool) ([]*LaunchStats, error) {
		t.Helper()
		dev := driver.NewDevice(7)
		const n = 1000
		mode := driver.ModeShield
		cfg := NvidiaConfig()
		if bcu {
			cfg = cfg.WithShield(core.DefaultBCUConfig())
		} else {
			mode = driver.ModeOff
		}
		cfg.CoreParallel = width
		la := parPrep(t, dev, buildVecAdd(t), 8, 128, parVecAddArgs(t, dev, n), mode)
		lb := parPrep(t, dev, buildMixedGolden(t), 12, 256, parMixedArgs(t, dev, 12*256), mode)
		gpu := New(cfg, dev)
		gpu.TrackPages(true)
		return gpu.RunConcurrent([]*driver.Launch{la, lb}, share)
	}
	for _, share := range []ShareMode{ShareInterCore, ShareIntraCore} {
		for _, bcu := range []bool{true, false} {
			t.Run(fmt.Sprintf("%v/bcu=%v", share, bcu), func(t *testing.T) {
				base, err := runAt(t, 1, share, bcu)
				if err != nil {
					t.Fatalf("serial run: %v", err)
				}
				for _, w := range widths[1:] {
					got, err := runAt(t, w, share, bcu)
					if err != nil {
						t.Fatalf("width %d: %v", w, err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Errorf("width %d diverged from serial:\n got: %+v\nwant: %+v", w, got, base)
					}
				}
			})
		}
	}
}

// TestCoreParallelAbortEquivalence pins the hazard fallback: launches that
// abort mid-flight — a BCU precise fault and a page fault — must tear down
// identically at every width, because the cycle that might abort re-runs on
// the serial scheduler.
func TestCoreParallelAbortEquivalence(t *testing.T) {
	buildOOB := func(t *testing.T) *kernel.Kernel {
		t.Helper()
		b := kernel.NewBuilder("oob-fault")
		buf := b.BufferParam("buf", false)
		v := b.LoadGlobal(b.AddScaled(buf, b.GlobalTID(), 4), 4)
		b.StoreGlobal(b.AddScaled(buf, b.Add(b.GlobalTID(), kernel.Imm(1<<20)), 4), v, 4)
		return b.MustBuild()
	}
	scenarios := []struct {
		name string
		run  func(t *testing.T, width int) ([]*LaunchStats, error)
	}{
		{"bcu-fail-fault", func(t *testing.T, width int) ([]*LaunchStats, error) {
			dev := driver.NewDevice(3)
			buffer := dev.Malloc("buf", 4096, false)
			la := parPrep(t, dev, buildOOB(t), 16, 64, []driver.Arg{driver.BufArg(buffer)}, driver.ModeShield)
			lb := parPrep(t, dev, buildVecAdd(t), 8, 128, parVecAddArgs(t, dev, 1000), driver.ModeShield)
			bcu := core.DefaultBCUConfig()
			bcu.Mode = core.FailFault
			cfg := NvidiaConfig().WithShield(bcu)
			cfg.CoreParallel = width
			return New(cfg, dev).RunConcurrent([]*driver.Launch{la, lb}, ShareInterCore)
		}},
		{"page-fault", func(t *testing.T, width int) ([]*LaunchStats, error) {
			// Under ModeOff nothing bounds-checks the wild store, so it walks
			// off every mapping and page-faults; the unmapped-lane hazard must
			// route the cycle to the serial scheduler at every width.
			dev := driver.NewDevice(3)
			buffer := dev.Malloc("buf", 4096, false)
			la := parPrep(t, dev, buildOOB(t), 16, 64, []driver.Arg{driver.BufArg(buffer)}, driver.ModeOff)
			lb := parPrep(t, dev, buildVecAdd(t), 8, 128, parVecAddArgs(t, dev, 1000), driver.ModeOff)
			cfg := NvidiaConfig()
			cfg.CoreParallel = width
			return New(cfg, dev).RunConcurrent([]*driver.Launch{la, lb}, ShareInterCore)
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base, baseErr := sc.run(t, 1)
			if len(base) == 0 || !base[0].Aborted {
				t.Fatalf("serial scenario did not abort launch 0: err=%v stats=%+v", baseErr, base)
			}
			for _, w := range []int{2, 8} {
				got, err := sc.run(t, w)
				if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
					t.Fatalf("width %d error diverged: %v vs %v", w, err, baseErr)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("width %d diverged from serial:\n got: %+v\nwant: %+v", w, got, base)
				}
			}
		})
	}
}

// TestCoreParallelCancelAndWatchdog drives the worker group through the two
// abort channels that arrive from outside the launch — context cancellation
// and the cycle-budget watchdog — at width 8 on a spin kernel. Run under
// -race this is also the scheduler's data-race probe: phase-A workers, the
// canceling goroutine, and the committing scheduler all interleave here.
func TestCoreParallelCancelAndWatchdog(t *testing.T) {
	spin := func(t *testing.T, dev *driver.Device, grid int) []*driver.Launch {
		t.Helper()
		buf := dev.Malloc("p", 1<<20, false)
		return []*driver.Launch{
			parPrep(t, dev, buildSpinGolden(t), grid, 64, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff),
		}
	}

	t.Run("cancel", func(t *testing.T) {
		dev := driver.NewDevice(5)
		cfg := NvidiaConfig()
		cfg.CoreParallel = 8
		gpu := New(cfg, dev)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		st, err := gpu.RunConcurrentCtx(ctx, spin(t, dev, 16), ShareInterCore)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
		if len(st) != 1 || !st[0].Aborted {
			t.Fatalf("expected an aborted partial report, got %+v", st)
		}
	})

	t.Run("watchdog", func(t *testing.T) {
		runAt := func(width int) ([]*LaunchStats, error) {
			dev := driver.NewDevice(5)
			cfg := NvidiaConfig()
			cfg.CoreParallel = width
			cfg.MaxCycles = 4096
			gpu := New(cfg, dev)
			return gpu.RunConcurrentCtx(context.Background(), spin(t, dev, 16), ShareInterCore)
		}
		base, baseErr := runAt(1)
		if !errors.Is(baseErr, ErrWatchdog) {
			t.Fatalf("got %v, want ErrWatchdog", baseErr)
		}
		if len(base) != 1 || !base[0].Aborted {
			t.Fatalf("expected an aborted report, got %+v", base)
		}
		st, err := runAt(8)
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("got %v, want ErrWatchdog", err)
		}
		if !reflect.DeepEqual(st, base) {
			t.Fatalf("width 8 watchdog abort diverged from serial:\n got: %+v\nwant: %+v", st, base)
		}
	})
}
