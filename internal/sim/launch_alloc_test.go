package sim

import (
	"testing"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

func buildAllocKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	kb := kernel.NewBuilder("allocprobe")
	p := kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	acc := kb.Mov(gtid)
	kb.ForRange(kernel.Imm(0), kernel.Imm(8), kernel.Imm(1), func(i kernel.Operand) {
		v := kb.LoadGlobal(kb.AddScaled(p, kb.And(kb.Add(gtid, i), kernel.Imm(4095)), 4), 4)
		kb.MovTo(acc, kb.Add(acc, v))
	})
	kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
	return kb.MustBuild()
}

// BenchmarkLaunchAllocs isolates the per-launch allocation cost on a warm
// GPU: one op is PrepareLaunch + Run with the device, kernel, and simulator
// all reused. The B/op and allocs/op columns are the numbers the bench
// guard (scripts/bench_compare.sh) watches; the regression test below pins
// the Run half to its floor.
func BenchmarkLaunchAllocs(b *testing.B) {
	k := buildAllocKernel(b)
	dev := driver.NewDevice(1)
	buf := dev.Malloc("p", 4096*4, false)
	gpu := New(NvidiaConfig(), dev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := dev.PrepareLaunch(k, 16, 256, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gpu.Run(l); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSteadyStateLaunchAllocs pins the steady-state launch path — the
// second and every later launch on a reused GPU — to its allocation floor.
// gpu.Run itself must allocate nothing beyond the two objects that escape
// to the caller and therefore cannot be pooled: the *LaunchStats report and
// the report slice RunConcurrentCtx returns. Everything else (run shells,
// dispatch lists, workgroups, warps, register files, lowered superblocks)
// comes from the GPU's arenas once they are warm.
func TestSteadyStateLaunchAllocs(t *testing.T) {
	k := buildAllocKernel(t)
	dev := driver.NewDevice(1)
	buf := dev.Malloc("p", 4096*4, false)
	// The floor below is a property of the serial scheduler; parallel
	// core-stepping legitimately allocates per-launch worker scratch, so pin
	// the width against the GPUSHIELD_CORE_PARALLEL matrix override.
	cfg := NvidiaConfig()
	cfg.CoreParallel = 1
	gpu := New(cfg, dev)
	mk := func() *driver.Launch {
		l, err := dev.PrepareLaunch(k, 16, 256, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// First launch warms every arena: workgroup shells, flat register
	// files, run shells, dispatch scratch, superblock pre-decode.
	if _, err := gpu.Run(mk()); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	launches := make([]*driver.Launch, rounds+1)
	for i := range launches {
		launches[i] = mk()
	}
	i := 0
	runOnly := testing.AllocsPerRun(rounds, func() {
		if _, err := gpu.Run(launches[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The caller-escaping report (*LaunchStats) and the returned report
	// slice are the entire allocation budget of a steady-state Run.
	if runOnly > 2 {
		t.Errorf("steady-state gpu.Run allocated %.1f objects/launch, want <= 2 (report + report slice)", runOnly)
	}

	prepAndRun := testing.AllocsPerRun(rounds, func() {
		if _, err := gpu.Run(mk()); err != nil {
			t.Fatal(err)
		}
	})
	// PrepareLaunch builds per-launch driver state (launch, args, RBT
	// image) that legitimately allocates; the PR 8 acceptance bound for the
	// whole steady-state path is <= 100 objects per launch, measured at
	// ~2,276 before the arena work.
	if prepAndRun > 100 {
		t.Errorf("steady-state PrepareLaunch+Run allocated %.1f objects/launch, want <= 100", prepAndRun)
	}
}
