package sim

import (
	"testing"

	"gpushield/internal/core"
)

func TestLaunchStatsClone(t *testing.T) {
	orig := &LaunchStats{
		Kernel:      "k",
		FinishCycle: 100,
		WarpInstrs:  7,
		Violations:  []core.Violation{{}},
		PagesPerBuffer: map[string]int{
			"a": 3,
		},
	}
	c := orig.Clone()
	if c == orig {
		t.Fatal("Clone returned the receiver")
	}
	c.FinishCycle = 999
	c.Violations = append(c.Violations, core.Violation{})
	c.PagesPerBuffer["b"] = 5
	if orig.FinishCycle != 100 {
		t.Fatal("scalar mutation leaked into the original")
	}
	if len(orig.Violations) != 1 {
		t.Fatal("violations slice shared with the clone")
	}
	if len(orig.PagesPerBuffer) != 1 {
		t.Fatal("pages map shared with the clone")
	}

	var nilStats *LaunchStats
	if nilStats.Clone() != nil {
		t.Fatal("Clone of nil must be nil")
	}
	empty := &LaunchStats{}
	ce := empty.Clone()
	if ce.Violations != nil || ce.PagesPerBuffer != nil {
		t.Fatal("Clone invented containers the original lacked")
	}
}
