package sim

import (
	"testing"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// timeKernel runs a kernel and returns its cycle count.
func timeKernel(t *testing.T, k *kernel.Kernel, grid, block int, args []driver.Arg, dev *driver.Device) uint64 {
	t.Helper()
	l, err := dev.PrepareLaunch(k, grid, block, args, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(NvidiaConfig(), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted {
		t.Fatalf("aborted: %s", st.AbortMsg)
	}
	return st.Cycles()
}

// streamK builds a kernel whose lanes read with the given element stride;
// stride 1 coalesces into one transaction per warp, stride 32 into 32.
func streamK(stride int64) *kernel.Kernel {
	b := kernel.NewBuilder("stride")
	p := b.BufferParam("p", false)
	idx := b.Mul(b.GlobalTID(), kernel.Imm(stride))
	v := b.LoadGlobal(b.AddScaled(p, idx, 4), 4)
	b.StoreGlobal(b.AddScaled(p, idx, 4), b.Add(v, kernel.Imm(1)), 4)
	return b.MustBuild()
}

// TestCoalescingMatters: strided access must be substantially slower than
// unit-stride access over the same element count.
func TestCoalescingMatters(t *testing.T) {
	const n = 8192
	devA := driver.NewDevice(1)
	bufA := devA.Malloc("p", n*4, false)
	unit := timeKernel(t, streamK(1), n/256, 256, []driver.Arg{driver.BufArg(bufA)}, devA)

	devB := driver.NewDevice(1)
	bufB := devB.Malloc("p", n*32*4, false)
	strided := timeKernel(t, streamK(32), n/256, 256, []driver.Arg{driver.BufArg(bufB)}, devB)

	if strided < unit*2 {
		t.Fatalf("stride-32 (%d cycles) should be >= 2x unit stride (%d cycles)", strided, unit)
	}
}

// TestTLPHidesLatency: the same total work spread over more concurrent
// warps must finish sooner per element.
func TestTLPHidesLatency(t *testing.T) {
	mk := func() (*kernel.Kernel, int) {
		b := kernel.NewBuilder("latbound")
		p := b.BufferParam("p", false)
		gtid := b.GlobalTID()
		// A chain of dependent loads: latency-bound per thread.
		v := b.LoadGlobal(b.AddScaled(p, gtid, 4), 4)
		for i := 0; i < 8; i++ {
			v = b.LoadGlobal(b.AddScaled(p, b.And(v, kernel.Imm(4095)), 4), 4)
		}
		b.StoreGlobal(b.AddScaled(p, gtid, 4), v, 4)
		return b.MustBuild(), 4096
	}
	k, n := mk()

	// 2 workgroups (sparse TLP) vs 16 workgroups of the same total size.
	devA := driver.NewDevice(2)
	bufA := devA.Malloc("p", uint64(n*4), false)
	sparse := timeKernel(t, k, 2, 64, []driver.Arg{driver.BufArg(bufA)}, devA)

	devB := driver.NewDevice(2)
	bufB := devB.Malloc("p", uint64(n*4), false)
	dense := timeKernel(t, k, 16, 64, []driver.Arg{driver.BufArg(bufB)}, devB)

	// Dense runs 8x the work; with latency hiding it must take well under
	// 8x the time.
	if dense > sparse*5 {
		t.Fatalf("8x work took %dx time (%d vs %d cycles): TLP not hiding latency",
			dense/sparse, dense, sparse)
	}
}

// TestCacheLocalityMatters: re-walking a small array repeatedly must beat
// walking a large array once per element count (DRAM-bound vs L1-bound).
func TestCacheLocalityMatters(t *testing.T) {
	mk := func(mask int64) *kernel.Kernel {
		b := kernel.NewBuilder("walk")
		p := b.BufferParam("p", false)
		gtid := b.GlobalTID()
		acc := b.Mov(kernel.Imm(0))
		b.ForRange(kernel.Imm(0), kernel.Imm(32), kernel.Imm(1), func(i kernel.Operand) {
			idx := b.And(b.Mad(gtid, kernel.Imm(37), b.Mul(i, kernel.Imm(97))), kernel.Imm(mask))
			v := b.LoadGlobal(b.AddScaled(p, idx, 4), 4)
			b.MovTo(acc, b.Add(acc, v))
		})
		b.StoreGlobal(b.AddScaled(p, gtid, 4), acc, 4)
		return b.MustBuild()
	}
	const threads = 4096

	devA := driver.NewDevice(3)
	small := devA.Malloc("p", 4096*4, false) // 16KB: L1-resident
	tSmall := timeKernel(t, mk(4095), threads/256, 256, []driver.Arg{driver.BufArg(small)}, devA)

	devB := driver.NewDevice(3)
	big := devB.Malloc("p", (1<<20)*4, false) // 4MB: streams from DRAM
	tBig := timeKernel(t, mk(1<<20-1), threads/256, 256, []driver.Arg{driver.BufArg(big)}, devB)

	if tBig <= tSmall {
		t.Fatalf("DRAM-resident walk (%d cycles) not slower than L1-resident (%d cycles)", tBig, tSmall)
	}
}

// TestComputeScalesWithWork: doubling per-thread arithmetic must increase
// cycles for a compute-bound kernel.
func TestComputeScalesWithWork(t *testing.T) {
	mk := func(iters int64) *kernel.Kernel {
		b := kernel.NewBuilder("alu")
		p := b.BufferParam("p", false)
		gtid := b.GlobalTID()
		v := b.Mov(gtid)
		b.ForRange(kernel.Imm(0), kernel.Imm(iters), kernel.Imm(1), func(i kernel.Operand) {
			b.MovTo(v, b.Add(b.Mul(v, kernel.Imm(3)), kernel.Imm(1)))
		})
		b.StoreGlobal(b.AddScaled(p, gtid, 4), v, 4)
		return b.MustBuild()
	}
	const n = 16384 // full occupancy so the cores are issue-bound
	devA := driver.NewDevice(4)
	bufA := devA.Malloc("p", n*4, false)
	short := timeKernel(t, mk(16), n/256, 256, []driver.Arg{driver.BufArg(bufA)}, devA)
	devB := driver.NewDevice(4)
	bufB := devB.Malloc("p", n*4, false)
	long := timeKernel(t, mk(64), n/256, 256, []driver.Arg{driver.BufArg(bufB)}, devB)
	if long < short*2 {
		t.Fatalf("4x arithmetic took %d vs %d cycles: compute not modeled", long, short)
	}
}

// TestBarrierCostsButCompletes: a barrier-heavy kernel is slower than the
// same kernel without barriers, and still correct.
func TestBarrierCostsButCompletes(t *testing.T) {
	mk := func(bar bool) *kernel.Kernel {
		b := kernel.NewBuilder("barrier")
		p := b.BufferParam("p", false)
		gtid := b.GlobalTID()
		v := b.Mov(gtid)
		for i := 0; i < 8; i++ {
			b.MovTo(v, b.Add(v, kernel.Imm(1)))
			if bar {
				b.Barrier()
			}
		}
		b.StoreGlobal(b.AddScaled(p, gtid, 4), v, 4)
		return b.MustBuild()
	}
	const n = 2048
	devA := driver.NewDevice(5)
	bufA := devA.Malloc("p", n*4, false)
	plain := timeKernel(t, mk(false), n/256, 256, []driver.Arg{driver.BufArg(bufA)}, devA)
	devB := driver.NewDevice(5)
	bufB := devB.Malloc("p", n*4, false)
	barred := timeKernel(t, mk(true), n/256, 256, []driver.Arg{driver.BufArg(bufB)}, devB)
	if barred <= plain {
		t.Fatalf("barriers should cost cycles: %d vs %d", barred, plain)
	}
	if got := devB.ReadUint32(bufB, 100); got != 108 {
		t.Fatalf("barrier kernel wrong result: %d", got)
	}
}
