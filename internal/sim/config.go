// Package sim is the cycle-level SIMT GPU model that plays the role MacSim
// plays in the paper's evaluation (§7). It executes kernel IR functionally
// (real data flows through simulated device memory) while modeling the
// timing interactions the paper's results depend on: warp scheduling and
// TLP latency hiding, LSU address coalescing, L1/L2 data caches, L1/L2
// TLBs, FR-FCFS DRAM, and the GPUShield bounds-checking unit with its
// RCache hierarchy.
package sim

import (
	"fmt"
	"os"
	"strconv"

	"gpushield/internal/core"
	"gpushield/internal/memsys"
)

// Config describes one simulated GPU (Table 5).
type Config struct {
	Name string

	Cores             int
	WarpWidth         int // lanes per warp (sub-workgroup size)
	MaxThreadsPerCore int
	MaxWGsPerCore     int // concurrent workgroups per core

	L1D   memsys.CacheConfig
	L1TLB memsys.TLBConfig
	L2    memsys.CacheConfig // shared
	L2TLB memsys.TLBConfig   // shared
	DRAM  memsys.DRAMConfig

	// Latencies in core cycles.
	ALULatency    int // simple integer/float ops
	MulLatency    int // mul/mad
	SFULatency    int // div/rem/sqrt
	SharedLatency int // shared-memory access
	L2Latency     int // L2 data cache hit (beyond L1 miss detection)
	L2TLBLatency  int // L2 TLB hit cost on an L1 TLB miss
	PageWalk      int // full page-table walk cost

	// BCU enables GPUShield hardware checking when EnableBCU is true.
	EnableBCU bool
	BCU       core.BCUConfig

	// MaxCycles is the kernel watchdog budget: a RunConcurrent invocation
	// that has simulated this many cycles without finishing is aborted, its
	// unfinished launches marked Aborted, and ErrWatchdog returned together
	// with the partial reports. 0 disables the watchdog (the historical
	// behaviour: a kernel that never terminates spins forever).
	MaxCycles uint64

	// CoreParallel selects how many OS threads step the simulated cores
	// inside one launch under the two-phase deterministic scheduler (see
	// DESIGN.md "Parallel core stepping"):
	//
	//	 0  — environment default: $GPUSHIELD_CORE_PARALLEL when it parses
	//	      as an integer > 1, otherwise serial stepping;
	//	 1  — serial stepping (the reference scheduler);
	//	>1  — that many workers, capped at the core count.
	//
	// Results — every LaunchStats byte — are identical at every width;
	// only wall-clock time changes. Negative values fail Validate.
	CoreParallel int

	// NoSuperblocks disables superblock stepping (pre-decoded straight-line
	// ALU runs executed in one dispatch; see internal/sim/superblock.go),
	// forcing the reference single-step execution path. Superblock stepping
	// is byte-identical to single-stepping by construction, so this exists
	// for the equivalence tests and the fuzz gate that prove it, and as an
	// escape hatch. The GPUSHIELD_NO_SUPERBLOCKS environment variable
	// (any non-empty value) forces it on for an unmodified binary.
	NoSuperblocks bool

	// NoMemPlans disables warp memory plans (per-warp cached address
	// generation, stride classification, transaction-granularity check
	// batching, and the bulk functional path; see internal/sim/memplan.go),
	// forcing the reference per-lane LSU path. The planned path is
	// byte-identical to the reference by construction, so this exists for
	// the equivalence tests and the fuzz gate that prove it, and as an
	// escape hatch. The GPUSHIELD_NO_MEMPLANS environment variable (any
	// non-empty value) forces it on for an unmodified binary.
	NoMemPlans bool
}

// noSuperblocksEnv force-disables superblock stepping, letting CI diff the
// fast path against reference single-stepping without a rebuild.
const noSuperblocksEnv = "GPUSHIELD_NO_SUPERBLOCKS"

// resolveNoSuperblocks folds the environment override into the config flag.
func (c Config) resolveNoSuperblocks() bool {
	return c.NoSuperblocks || os.Getenv(noSuperblocksEnv) != ""
}

// noMemPlansEnv force-disables warp memory plans, letting CI diff the LSU
// fast path against the reference per-lane path without a rebuild.
const noMemPlansEnv = "GPUSHIELD_NO_MEMPLANS"

// resolveNoMemPlans folds the environment override into the config flag.
func (c Config) resolveNoMemPlans() bool {
	return c.NoMemPlans || os.Getenv(noMemPlansEnv) != ""
}

// coreParallelEnv overrides CoreParallel == 0, which is what lets the
// unmodified golden tests exercise the parallel scheduler in CI.
const coreParallelEnv = "GPUSHIELD_CORE_PARALLEL"

// resolveCoreParallel maps CoreParallel (plus the environment default) to
// the effective worker count, >= 1 and capped at the core count.
func (c Config) resolveCoreParallel() int {
	n := c.CoreParallel
	if n == 0 {
		if s := os.Getenv(coreParallelEnv); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 1 {
				n = v
			}
		}
	}
	if n < 1 {
		n = 1
	}
	if n > c.Cores {
		n = c.Cores
	}
	return n
}

// MaxWarpsPerCore returns the warp-context capacity of one core.
func (c Config) MaxWarpsPerCore() int { return c.MaxThreadsPerCore / c.WarpWidth }

// Validate reports whether the configuration describes a constructible GPU.
// Every violation wraps ErrInvalidConfig.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.WarpWidth <= 0 || c.WarpWidth > 64 ||
		c.MaxThreadsPerCore < c.WarpWidth || c.MaxWGsPerCore <= 0 {
		return fmt.Errorf("%w: %q: cores=%d warp=%d threads/core=%d wgs/core=%d",
			ErrInvalidConfig, c.Name, c.Cores, c.WarpWidth, c.MaxThreadsPerCore, c.MaxWGsPerCore)
	}
	for _, cc := range []memsys.CacheConfig{c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	for _, tc := range []memsys.TLBConfig{c.L1TLB, c.L2TLB} {
		if err := tc.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	if c.DRAM.Channels <= 0 || c.DRAM.BanksPerChannel <= 0 ||
		c.DRAM.RowBytes <= 0 || c.DRAM.InterleaveBytes <= 0 {
		return fmt.Errorf("%w: %q: DRAM geometry %+v", ErrInvalidConfig, c.Name, c.DRAM)
	}
	if c.CoreParallel < 0 {
		return fmt.Errorf("%w: %q: CoreParallel=%d (want >= 0: 0 = environment default, 1 = serial, n = n workers)",
			ErrInvalidConfig, c.Name, c.CoreParallel)
	}
	return nil
}

// NvidiaConfig returns the Table 5 Nvidia-style configuration: 16 SMs, 1024
// threads per SM, 32-wide warps, 16 KB 4-way L1, 64-entry fully-associative
// L1 TLB, 2 MB 16-way shared L2, 1024-entry 32-way shared L2 TLB, 16-channel
// FR-FCFS DRAM.
func NvidiaConfig() Config {
	return Config{
		Name:              "nvidia",
		Cores:             16,
		WarpWidth:         32,
		MaxThreadsPerCore: 1024,
		MaxWGsPerCore:     8,
		L1D: memsys.CacheConfig{
			Name: "L1D", SizeBytes: 16 << 10, LineBytes: 128, Ways: 4, HitLatency: 28,
		},
		L1TLB: memsys.TLBConfig{
			Name: "L1TLB", Entries: 64, Ways: 64, PageBytes: 4096,
		},
		L2: memsys.CacheConfig{
			Name: "L2", SizeBytes: 2 << 20, LineBytes: 128, Ways: 16, HitLatency: 90,
		},
		L2TLB: memsys.TLBConfig{
			Name: "L2TLB", Entries: 1024, Ways: 32, PageBytes: 4096,
		},
		DRAM:          memsys.DefaultDRAMConfig(),
		ALULatency:    4,
		MulLatency:    6,
		SFULatency:    20,
		SharedLatency: 24,
		L2Latency:     90,
		L2TLBLatency:  20,
		PageWalk:      200,
		EnableBCU:     false,
		BCU:           core.DefaultBCUConfig(),
	}
}

// IntelConfig returns the Table 5 Intel-style configuration: 24 cores with
// 7 hardware threads each, SIMD16 execution, 32 KB 4-way L1, shared 2 MB L2.
func IntelConfig() Config {
	c := NvidiaConfig()
	c.Name = "intel"
	c.Cores = 24
	c.WarpWidth = 16
	c.MaxThreadsPerCore = 7 * 16
	c.MaxWGsPerCore = 4
	c.L1D = memsys.CacheConfig{
		Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 24,
	}
	return c
}

// WithShield returns a copy of c with GPUShield enabled using bcu.
func (c Config) WithShield(bcu core.BCUConfig) Config {
	c.EnableBCU = true
	c.BCU = bcu
	return c
}
