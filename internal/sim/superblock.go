package sim

import (
	"math/bits"

	"gpushield/internal/kernel"
)

// Superblock stepping (ROADMAP item 2a): at launch time each kernel's
// instruction stream is pre-decoded into superblocks — maximal straight-line
// runs of unpredicated ALU instructions containing no memory, branch,
// barrier, or exit instruction — and the functional effects of a whole
// superblock are applied in one dispatch when a warp issues its first
// instruction.
//
// Equivalence with per-instruction stepping is held by construction, not by
// side conditions: only the *functional* execution is hoisted. The scheduler
// still issues every instruction of the block at its exact serial cycle —
// the remaining instructions become "replay" issues that advance PC, charge
// the per-opcode latency, and bump WarpInstrs/ThreadInstrs, but skip operand
// planning and the per-lane arithmetic (already applied). Issue slots,
// contention between warps, wake times, watchdog and cancellation polls, the
// visited-cycle sequence, and partial stats at any abort point are therefore
// byte-identical to single-stepping at every -core-parallel width.
//
// Hoisting the arithmetic is safe because ALU instructions are lane-local
// (each lane reads and writes only its own registers) and warp-private: no
// other warp, core, hook, or stat can observe a warp's registers mid-block.
// Runs are cut at every potential divergence-reconvergence target so the
// reconvergence stack can never pop (changing the active mask) inside a
// block, and predicated instructions are excluded so the guard mask of every
// block instruction is exactly the (constant) active mask.

// sbMinLen is the shortest run executed through the lowered path. Length-1
// runs are included: even a single instruction is cheaper through its cached
// lowered form than through the plain path, which re-resolves operand plans
// on every issue.
const sbMinLen = 1

// superblockLens returns, for each pc, the length of the maximal superblock
// run starting there (0 for instructions that cannot begin one). A branch
// into the middle of a pre-decoded run is harmless: the table holds suffix
// lengths, so the landing pc simply starts a shorter run.
func superblockLens(k *kernel.Kernel) []int32 {
	code := k.Code
	// Reconvergence targets: the only pcs where warp.reconverge can pop a
	// stack entry (every pushed reconvPC is some BraDiv's Reconv field).
	// A run must not flow across one, or a mid-block pop would change the
	// active mask the bulk execution already used.
	reconv := make([]bool, len(code)+1)
	for i := range code {
		if code[i].Op == kernel.OpBraDiv {
			if r := code[i].Reconv; r >= 0 && r < len(reconv) {
				reconv[r] = true
			}
		}
	}
	lens := make([]int32, len(code))
	for pc := len(code) - 1; pc >= 0; pc-- {
		in := &code[pc]
		if in.Op.IsMemory() || in.Op.IsBranch() ||
			in.Op == kernel.OpBar || in.Op == kernel.OpExit || in.Pred >= 0 {
			continue // lens[pc] stays 0: ends any run
		}
		lens[pc] = 1
		if pc+1 < len(code) && !reconv[pc+1] {
			lens[pc] += lens[pc+1]
		}
	}
	return lens
}

// superblocks returns the (cached) superblock table for k, or nil when
// superblock stepping is disabled.
func (g *GPU) superblocks(k *kernel.Kernel) []int32 {
	if g.noSuperblocks {
		return nil
	}
	if t, ok := g.sbCache[k]; ok {
		return t
	}
	// The cache is keyed by kernel identity; a long-lived GPU fed unbounded
	// distinct kernels (the fuzzer, the service catalog) must not grow
	// without bound.
	if len(g.sbCache) >= 256 {
		clear(g.sbCache)
	}
	t := superblockLens(k)
	g.sbCache[k] = t
	return t
}

// sbEntry is one lowered superblock cached on a warp: the specialized forms
// and, for blocks with a generic instruction, the resolved operand plans.
// Entries are recycled in place across warp reuse (the backing arrays
// survive truncation), so steady-state lowering allocates nothing.
type sbEntry struct {
	mixed bool
	low   []sbIn
	pl    [][3]srcPlan
}

// execSuperblock applies the functional effects of the n-instruction
// superblock starting at w.pc. Each block is lowered once per warp (operand
// plans and specialized instruction forms are constant for the warp's
// lifetime) and cached in the warp's per-pc block table, so loops re-enter
// every block — not just the most recent one — without relowering. Blocks
// in which every instruction lowered to a specialized form run lane-major
// (each lane's register row stays hot while the whole block executes on
// it); blocks with any generic instruction run instruction-major through
// the reference per-op loops. ALU instructions are lane-local, so both
// orders produce identical register state. The caller completes the first
// instruction's issue; the remaining n-1 become replay issues (w.sbLeft).
func (c *coreState) execSuperblock(w *warp, n int, now uint64) {
	ei := w.sbIdx[w.pc]
	if ei == 0 {
		ei = c.lowerSuperblock(w, w.code, n)
		w.sbIdx[w.pc] = ei
	}
	e := &w.sbEnt[ei-1]
	if !e.mixed {
		c.execSBFast(w, e.low)
	} else {
		for i := 0; i < n; i++ {
			c.execALUWarpPlanned(w, &w.code[w.pc+i], w.active, &e.pl[i])
		}
	}
	w.sbLeft = n - 1
}

// sbIn is one lowered superblock instruction. Specialized kinds encode the
// opcode together with its operand shape — register (a, b index the lane's
// register row) or const/affine (value = cb + sb*lane) — so the fast
// executor's inner loop is a dense switch with no per-operand branching.
type sbIn struct {
	k   int
	dst int
	a   int
	b   int
	cb  int64
	sb  int64
}

// Lowered instruction kinds. R suffixes are register operands, C suffixes
// const/affine operands. sbkGeneric marks an instruction (rare opcode or
// operand shape) left to the reference execALUWarpPlanned path.
const (
	sbkGeneric = iota
	sbkMovC
	sbkMovR
	sbkAddRR
	sbkAddRC
	sbkSubRR
	sbkMulRR
	sbkMulRC
	sbkAndRR
	sbkAndRC
	sbkOrRR
	sbkOrRC
	sbkXorRR
	sbkXorRC
	sbkShlRC
	sbkShrRC
	sbkSetLTRR
	sbkSetLERR
	sbkSetEQRR
	sbkSetNERR
	sbkSetGTRR
	sbkSetGERR
	sbkSetLTRC
	sbkSetLERC
	sbkSetEQRC
	sbkSetNERC
	sbkSetGTRC
	sbkSetGERC
)

// lowerSuperblock resolves operand plans for the block at w.pc and lowers
// each instruction into a fresh (or recycled) cache entry, returning its
// 1-based index for w.sbIdx. Plans are copied into the entry only when some
// instruction stayed generic.
func (c *coreState) lowerSuperblock(w *warp, code []kernel.Instr, n int) int32 {
	if cap(c.sbPlans) < n {
		c.sbPlans = make([][3]srcPlan, n+8)
	}
	plans := c.sbPlans[:n]
	if len(w.sbEnt) < cap(w.sbEnt) {
		w.sbEnt = w.sbEnt[:len(w.sbEnt)+1] // recycle a parked entry's backing
	} else {
		w.sbEnt = append(w.sbEnt, sbEntry{})
	}
	e := &w.sbEnt[len(w.sbEnt)-1]
	low := e.low[:0]
	if cap(low) < n {
		low = make([]sbIn, 0, n)
	}
	fast := true
	for i := 0; i < n; i++ {
		in := &code[w.pc+i]
		plans[i][0] = c.plan(w, in.Src[0])
		plans[i][1] = c.plan(w, in.Src[1])
		plans[i][2] = c.plan(w, in.Src[2])
		l := lowerSBInstr(in, &plans[i])
		if l.k == sbkGeneric {
			fast = false
		}
		low = append(low, l)
	}
	e.low = low
	e.mixed = !fast
	e.pl = e.pl[:0]
	if !fast {
		if cap(e.pl) < n {
			e.pl = make([][3]srcPlan, 0, n)
		}
		e.pl = e.pl[:n]
		copy(e.pl, plans)
	}
	return int32(len(w.sbEnt))
}

// lowerSBInstr maps one block instruction plus its resolved plans to a
// specialized form, folding constants where the result stays affine in the
// lane index (exact under two's-complement wrapping: distribution and
// negation are identities mod 2^64). Anything else stays generic.
func lowerSBInstr(in *kernel.Instr, ps *[3]srcPlan) sbIn {
	dst := in.Dst
	if dst < 0 {
		return sbIn{k: sbkGeneric}
	}
	p0, p1 := &ps[0], &ps[1]
	r0, r1 := p0.reg >= 0, p1.reg >= 0
	movC := func(cb, sb int64) sbIn { return sbIn{k: sbkMovC, dst: dst, cb: cb, sb: sb} }
	rr := func(k int) sbIn { return sbIn{k: k, dst: dst, a: p0.reg, b: p1.reg} }
	rc := func(k int, r *srcPlan, cp *srcPlan) sbIn {
		return sbIn{k: k, dst: dst, a: r.reg, cb: cp.base, sb: cp.slope}
	}
	switch in.Op {
	case kernel.OpMov:
		if r0 {
			return sbIn{k: sbkMovR, dst: dst, a: p0.reg}
		}
		return movC(p0.base, p0.slope)
	case kernel.OpAdd:
		switch {
		case r0 && r1:
			return rr(sbkAddRR)
		case r0:
			return rc(sbkAddRC, p0, p1)
		case r1:
			return rc(sbkAddRC, p1, p0)
		}
		return movC(p0.base+p1.base, p0.slope+p1.slope)
	case kernel.OpSub:
		switch {
		case r0 && r1:
			return rr(sbkSubRR)
		case r0:
			return sbIn{k: sbkAddRC, dst: dst, a: p0.reg, cb: -p1.base, sb: -p1.slope}
		case !r1:
			return movC(p0.base-p1.base, p0.slope-p1.slope)
		}
		return sbIn{k: sbkGeneric}
	case kernel.OpMul:
		switch {
		case r0 && r1:
			return rr(sbkMulRR)
		case r0:
			return rc(sbkMulRC, p0, p1)
		case r1:
			return rc(sbkMulRC, p1, p0)
		case p1.slope == 0:
			return movC(p0.base*p1.base, p0.slope*p1.base)
		case p0.slope == 0:
			return movC(p0.base*p1.base, p1.slope*p0.base)
		}
		return sbIn{k: sbkGeneric}
	case kernel.OpAnd, kernel.OpOr, kernel.OpXor:
		var kRR, kRC int
		switch in.Op {
		case kernel.OpAnd:
			kRR, kRC = sbkAndRR, sbkAndRC
		case kernel.OpOr:
			kRR, kRC = sbkOrRR, sbkOrRC
		default:
			kRR, kRC = sbkXorRR, sbkXorRC
		}
		switch {
		case r0 && r1:
			return rr(kRR)
		case r0:
			return rc(kRC, p0, p1)
		case r1:
			return rc(kRC, p1, p0)
		case p0.slope == 0 && p1.slope == 0:
			switch in.Op {
			case kernel.OpAnd:
				return movC(p0.base&p1.base, 0)
			case kernel.OpOr:
				return movC(p0.base|p1.base, 0)
			default:
				return movC(p0.base^p1.base, 0)
			}
		}
		return sbIn{k: sbkGeneric}
	case kernel.OpShl:
		if r0 && !r1 {
			return rc(sbkShlRC, p0, p1)
		}
		return sbIn{k: sbkGeneric}
	case kernel.OpShr:
		if r0 && !r1 {
			return rc(sbkShrRC, p0, p1)
		}
		return sbIn{k: sbkGeneric}
	case kernel.OpSetLT:
		return lowerSet(in, ps, sbkSetLTRR, sbkSetLTRC, sbkSetGTRC, dst)
	case kernel.OpSetLE:
		return lowerSet(in, ps, sbkSetLERR, sbkSetLERC, sbkSetGERC, dst)
	case kernel.OpSetEQ:
		return lowerSet(in, ps, sbkSetEQRR, sbkSetEQRC, sbkSetEQRC, dst)
	case kernel.OpSetNE:
		return lowerSet(in, ps, sbkSetNERR, sbkSetNERC, sbkSetNERC, dst)
	case kernel.OpSetGT:
		return lowerSet(in, ps, sbkSetGTRR, sbkSetGTRC, sbkSetLTRC, dst)
	case kernel.OpSetGE:
		return lowerSet(in, ps, sbkSetGERR, sbkSetGERC, sbkSetLERC, dst)
	}
	return sbIn{k: sbkGeneric}
}

// lowerSet lowers one comparison: kRR for two registers, kRC for reg-vs-
// const, kRCswap for the mirrored comparison when the constant is on the
// left (c OP r  ⇔  r mirror(OP) c).
func lowerSet(in *kernel.Instr, ps *[3]srcPlan, kRR, kRC, kRCswap, dst int) sbIn {
	p0, p1 := &ps[0], &ps[1]
	switch {
	case p0.reg >= 0 && p1.reg >= 0:
		return sbIn{k: kRR, dst: dst, a: p0.reg, b: p1.reg}
	case p0.reg >= 0:
		return sbIn{k: kRC, dst: dst, a: p0.reg, cb: p1.base, sb: p1.slope}
	case p1.reg >= 0:
		return sbIn{k: kRCswap, dst: dst, a: p1.reg, cb: p0.base, sb: p0.slope}
	}
	return sbIn{k: sbkGeneric}
}

// execSBFast executes an all-specialized lowered block lane-major: each
// active lane's register row is sliced once and the whole block runs on it.
// execSBFast runs a fully-specialized block instruction-major: the kind
// switch is resolved once per instruction and a dense loop then applies the
// operation to every active lane, so dispatch cost is amortized across the
// warp width instead of being paid per lane-op. Active-lane register-row
// offsets (and lane indices, for affine constants) are materialized once per
// block into per-core scratch. ALU instructions are lane-local, so
// instruction-major and lane-major orders produce identical register state.
func (c *coreState) execSBFast(w *warp, low []sbIn) {
	flat := w.flat
	offs, lns := w.sbOffs, w.sbLanes
	if w.sbMask != w.active {
		nregs := w.nregs
		offs, lns = offs[:0], lns[:0]
		for lanes := w.active; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			offs = append(offs, lane*nregs)
			lns = append(lns, int64(lane))
		}
		w.sbOffs, w.sbLanes, w.sbMask = offs, lns, w.active
	}
	for i := range low {
		d := &low[i]
		dst, a, b, cb, sb := d.dst, d.a, d.b, d.cb, d.sb
		switch d.k {
		case sbkMovC:
			for i, o := range offs {
				flat[o+dst] = cb + sb*lns[i]
			}
		case sbkMovR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a]
			}
		case sbkAddRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] + flat[o+b]
			}
		case sbkAddRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] + cb + sb*lns[i]
			}
		case sbkSubRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] - flat[o+b]
			}
		case sbkMulRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] * flat[o+b]
			}
		case sbkMulRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] * (cb + sb*lns[i])
			}
		case sbkAndRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] & flat[o+b]
			}
		case sbkAndRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] & (cb + sb*lns[i])
			}
		case sbkOrRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] | flat[o+b]
			}
		case sbkOrRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] | (cb + sb*lns[i])
			}
		case sbkXorRR:
			for _, o := range offs {
				flat[o+dst] = flat[o+a] ^ flat[o+b]
			}
		case sbkXorRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] ^ (cb + sb*lns[i])
			}
		case sbkShlRC:
			for i, o := range offs {
				flat[o+dst] = flat[o+a] << uint64((cb+sb*lns[i])&63)
			}
		case sbkShrRC:
			for i, o := range offs {
				flat[o+dst] = int64(uint64(flat[o+a]) >> uint64((cb+sb*lns[i])&63))
			}
		case sbkSetLTRR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] < flat[o+b])
			}
		case sbkSetLERR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] <= flat[o+b])
			}
		case sbkSetEQRR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] == flat[o+b])
			}
		case sbkSetNERR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] != flat[o+b])
			}
		case sbkSetGTRR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] > flat[o+b])
			}
		case sbkSetGERR:
			for _, o := range offs {
				flat[o+dst] = b2i(flat[o+a] >= flat[o+b])
			}
		case sbkSetLTRC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] < cb+sb*lns[i])
			}
		case sbkSetLERC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] <= cb+sb*lns[i])
			}
		case sbkSetEQRC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] == cb+sb*lns[i])
			}
		case sbkSetNERC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] != cb+sb*lns[i])
			}
		case sbkSetGTRC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] > cb+sb*lns[i])
			}
		case sbkSetGERC:
			for i, o := range offs {
				flat[o+dst] = b2i(flat[o+a] >= cb+sb*lns[i])
			}
		}
	}
}

// replayIssue is the scheduler-visible remainder of a pre-executed
// superblock instruction: per-instruction stats, PC advance, and the opcode
// latency — everything except the (already applied) arithmetic. It must
// mirror execute's ALU path exactly.
func (c *coreState) replayIssue(w *warp, in *kernel.Instr, now uint64) {
	st := c.statsFor(w.wg.run)
	st.WarpInstrs++
	st.ThreadInstrs += uint64(bits.OnesCount64(w.active))
	w.sbLeft--
	w.pc++
	c.wake(w, now+uint64(c.gpu.aluLat[in.Op]))
}
