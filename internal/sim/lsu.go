package sim

import (
	"fmt"
	"math"
	"math/bits"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
	"gpushield/internal/memsys"
)

// memPrep is the core-private half of one global-memory instruction: the
// generated per-lane addresses and the coalesced transaction set. It is a
// pure function of warp registers and the launch, so the parallel scheduler
// computes it in phase A (where it doubles as the abort-hazard evidence)
// while the shared-state half, memCommit, waits for the serial commit.
type memPrep struct {
	addrs  [64]uint64
	offs   [64]int64
	lines  [64]uint64
	nLines int

	minAddr, maxAddr uint64
	minOfs, maxOfs   int64
	ptr              uint64

	// Plan-path metadata (memplan.go): class/stride/wrapped classify the
	// generated address vector, lanes is the dense active-lane list, and
	// plan points at the warp's lowered entry (decrypt memo, skip flag,
	// store operand). class == memClassRef means the reference generator
	// ran and the rest is unset.
	class   uint8
	wrapped bool
	stride  int64
	lanes   []int32
	plan    *memPlan
}

// execMem executes one warp-level memory instruction: address generation,
// coalescing, bounds checking, translation + cache timing, and the
// functional access against simulated device memory. Serially that is
// memGen followed immediately by memCommit; under the parallel scheduler
// the commit half is deferred into the core's intent and applied in
// ascending core-id order, so the shared-state mutation sequence is
// identical either way.
func (c *coreState) execMem(w *warp, in *kernel.Instr, gmask uint64, now uint64) {
	r := w.wg.run
	st := c.statsFor(r)
	st.MemInstrs++

	if in.Space == kernel.SpaceShared {
		c.execShared(w, in, gmask, now)
		return
	}
	if gmask == 0 {
		w.pc++
		c.wake(w, now+1)
		return
	}
	if p := c.pend; p != nil {
		// Parallel phase A: the addresses were already generated during
		// hazard evaluation in the select phase; everything else touches
		// shared state and runs at commit time.
		p.memPend = true
		return
	}
	// The serial scheduler reuses the core's scratch memPrep: zeroing a
	// fresh ~1.6KB struct per instruction was measurable, and only
	// active-lane entries of the arrays are ever read downstream.
	prep := &c.sPrep
	c.memGen(w, in, gmask, prep)
	c.memCommit(w, in, gmask, now, prep)
}

// memGen runs address generation and coalescing for one global-memory
// instruction into prep: through the warp's lowered memory plan when
// enabled and applicable (memplan.go), through the reference per-lane
// generator otherwise. Both fill prep identically; the planned path
// additionally classifies the access so memCommit can batch. It reads warp
// registers and launch metadata only — no shared or timing state.
func (c *coreState) memGen(w *warp, in *kernel.Instr, gmask uint64, prep *memPrep) {
	prep.class, prep.wrapped, prep.stride = memClassRef, false, 0
	prep.lanes, prep.plan = nil, nil
	if !c.gpu.noMemPlans && c.memGenFast(w, in, gmask, prep) {
		return
	}
	c.memGenRef(w, in, gmask, prep)
}

// memGenRef is the reference address generator and coalescer — the
// semantics memGenFast must reproduce bit-for-bit, kept as the
// GPUSHIELD_NO_MEMPLANS path and as the fallback for unplannable shapes.
func (c *coreState) memGenRef(w *warp, in *kernel.Instr, gmask uint64, prep *memPrep) {
	l := w.wg.run.launch
	ww := c.gpu.cfg.WarpWidth

	// Address generation (AGU). ptr carries the tag of the pointer being
	// dereferenced; offsets are collected for Type-3 checking.
	var (
		addrs   = &prep.addrs
		offs    = &prep.offs
		ptr     uint64
		havePtr bool
	)
	switch {
	case in.Space == kernel.SpaceLocal:
		varIdx := int(in.Src[1].Imm)
		reg := &l.Locals[varIdx]
		ptr = l.LocalPtrs[varIdx]
		havePtr = true
		p0 := c.plan(w, in.Src[0])
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			thr := w.wg.id*l.Block + w.inWG*ww + lane
			off := p0.eval(w, lane)
			addrs[lane] = reg.LocalAddr(thr, off)
			offs[lane] = int64(addrs[lane]) - int64(reg.Base)
		}
	case in.Src[0].Kind == kernel.OperandParam:
		// Method C: base from the parameter (uniform), explicit offset.
		base := l.Args[in.Src[0].Param]
		ptr = base
		havePtr = true
		p1 := c.plan(w, in.Src[1])
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			off := p1.eval(w, lane)
			addrs[lane] = core.Addr(base) + uint64(off)
			offs[lane] = off
		}
	default:
		// Method B: the register holds a full (possibly tagged) address.
		p0 := c.plan(w, in.Src[0])
		p1 := c.plan(w, in.Src[1])
		hasOff := in.Src[1].Kind != kernel.OperandNone
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			v := uint64(p0.eval(w, lane))
			if hasOff {
				v += uint64(p1.eval(w, lane))
			}
			if !havePtr {
				ptr, havePtr = v, true
			}
			addrs[lane] = core.Addr(v)
			offs[lane] = 0
		}
	}

	// Address range gathering and coalescing (ACU): unique cache-line
	// transactions plus warp min/max byte range.
	lineMask := ^uint64(int64(c.gpu.cfg.L1D.LineBytes - 1))
	lines := &prep.lines
	nLines := 0
	minAddr, maxAddr := ^uint64(0), uint64(0)
	minOfs, maxOfs := int64(math.MaxInt64), int64(math.MinInt64)
	bytes := uint64(in.Bytes)
	for lanes := gmask; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		a := addrs[lane]
		if a < minAddr {
			minAddr = a
		}
		if a+bytes-1 > maxAddr {
			maxAddr = a + bytes - 1
		}
		if offs[lane] < minOfs {
			minOfs = offs[lane]
		}
		if offs[lane]+int64(bytes)-1 > maxOfs {
			maxOfs = offs[lane] + int64(bytes) - 1
		}
		for la := a & lineMask; la <= (a+bytes-1)&lineMask; la += uint64(c.gpu.cfg.L1D.LineBytes) {
			found := false
			if !l.NoCoalesce {
				for i := 0; i < nLines; i++ {
					if lines[i] == la {
						found = true
						break
					}
				}
			}
			if !found && nLines < len(lines) {
				lines[nLines] = la
				nLines++
			}
		}
	}

	prep.nLines = nLines
	prep.minAddr, prep.maxAddr = minAddr, maxAddr
	prep.minOfs, prep.maxOfs = minOfs, maxOfs
	prep.ptr = ptr
}

// anyUnmapped reports whether any guarded lane's generated address falls on
// an unmapped page — the parallel scheduler's page-fault hazard evidence.
// It is deliberately conservative: GPUShield may squash the access before
// the fault is observed, but such a cycle simply falls back to the serial
// scheduler, which sequences (or suppresses) the abort exactly.
func (c *coreState) anyUnmapped(gmask uint64, prep *memPrep) bool {
	if c.rangeMapped(prep) {
		return false
	}
	for lanes := gmask; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		if !c.gpu.dev.Mapped(prep.addrs[lane]) {
			return true
		}
	}
	return false
}

// memCommit applies the shared-state half of one global-memory instruction
// whose addresses were generated by memGen: TLB/cache/DRAM timing, fault
// injection, the bounds check (including RBT fetches through the L2), the
// page-fault abort, the page census, the functional access, and atomic-unit
// serialization. Under the parallel scheduler it runs in the serial commit
// phase in ascending core-id order; serially it runs inline, so both paths
// mutate the L2/L2TLB/DRAM/atomicBusy/backing-store state in the same order
// and the golden statistics are byte-identical.
func (c *coreState) memCommit(w *warp, in *kernel.Instr, gmask uint64, now uint64, prep *memPrep) {
	r := w.wg.run
	st := r.stats
	l := r.launch
	addrs := &prep.addrs
	lines := &prep.lines
	nLines := prep.nLines
	minAddr := prep.minAddr

	// Timing: each transaction walks the TLB + cache hierarchy.
	var maxLat uint64
	allHit := true
	for i := 0; i < nLines; i++ {
		lat, hit := c.gpu.memAccess(c, st, lines[i])
		if lat > maxLat {
			maxLat = lat
		}
		if !hit {
			allHit = false
		}
	}
	st.Transactions += uint64(nLines)

	// Fault injection: the campaign engine may drop this instruction's
	// transactions (silent data loss — stores vanish, loads return zeros)
	// or duplicate them (the transactions replay; timing disturbance only).
	var txDropped bool
	if c.gpu.txFault != nil {
		switch v := c.gpu.txFault(now, minAddr, in.Op.IsStore()); {
		case v.Drop:
			txDropped = true
			st.DroppedTx += uint64(nLines)
		case v.Dup:
			st.DupTx += uint64(nLines)
			for i := 0; i < nLines; i++ {
				if lat, _ := c.gpu.memAccess(c, st, lines[i]); lat > maxLat {
					maxLat = lat
				}
			}
			st.Transactions += uint64(nLines)
		}
	}

	// Bounds checking (BCU).
	var (
		squash, drop bool
		stall        int
		extra        uint64
	)
	protect := c.gpu.cfg.EnableBCU && l.Mode != driver.ModeOff
	skipCheck := false
	if protect {
		if e := prep.plan; e != nil {
			skipCheck = e.skip // memoized l.SkipCheck[w.pc]
		} else {
			skipCheck = l.SkipCheck[w.pc]
		}
	}
	if protect && skipCheck {
		st.Skipped++
	} else if protect {
		out := c.checkTransaction(w, in, gmask, prep, nLines == 1, allHit, st, l)
		squash, drop, stall, extra = out.squash, out.drop, out.stall, out.extra
		if out.fault != nil && c.gpu.cfg.BCU.Mode == core.FailFault {
			c.gpu.abortRun(r, fmt.Sprintf("GPUShield fault: %s", out.fault))
			return
		}
	}

	// A dropped transaction never reaches memory: loads return zeros, stores
	// are discarded, and no page fault can be observed for it.
	if txDropped {
		squash, drop = true, true
	}

	// Page-fault check: an access to an unmapped page aborts the kernel
	// (the Fig. 4 case-3 behaviour) unless GPUShield already suppressed the
	// access. A plan-classified wrap-free transaction clears the whole warp
	// with one mapped-range sweep; the per-lane walk remains the fallback
	// (and, on a fault, the exact first-offender reporter — a failed sweep
	// always reaches it, so the abort address and message are identical).
	if !squash && !drop && !c.rangeMapped(prep) {
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			if !c.gpu.dev.Mapped(addrs[lane]) {
				c.gpu.abortRun(r, fmt.Sprintf("illegal memory access at %#x (pc @%d)", addrs[lane], w.pc))
				return
			}
		}
	}

	// Page-touch census (Fig. 11).
	if r.pages != nil {
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			a := addrs[lane]
			for j, b := range l.ArgBuffers {
				if b != nil && a >= b.Base && a < b.Base+b.Padded {
					r.pages[j][a/driver.PageBytes] = struct{}{}
					break
				}
			}
		}
	}

	// Functional access. Dense unit-stride transactions inside one backing
	// chunk go through the bulk span path; everything else (and any squash
	// or drop) takes the per-lane reference path.
	mem := c.gpu.dev.Mem
	switch in.Op {
	case kernel.OpLd:
		if in.Dst >= 0 { // a discard-destination load still paid its timing above
			if squash || prep.class != memClassUnit || prep.wrapped || !c.batchLoad(w, in, prep) {
				for lanes := gmask; lanes != 0; {
					lane := bits.TrailingZeros64(lanes)
					lanes &^= 1 << uint(lane)
					var v int64
					if !squash {
						v = loadValue(mem, addrs[lane], in)
					}
					w.flat[lane*w.nregs+in.Dst] = v
				}
			}
		}
	case kernel.OpSt:
		if !drop {
			if prep.class != memClassUnit || prep.wrapped || !c.batchStore(w, in, prep) {
				p2 := c.plan(w, in.Src[2])
				for lanes := gmask; lanes != 0; {
					lane := bits.TrailingZeros64(lanes)
					lanes &^= 1 << uint(lane)
					storeValue(mem, addrs[lane], in, p2.eval(w, lane))
				}
			}
		}
	case kernel.OpAtomAdd:
		p2 := c.plan(w, in.Src[2])
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			var old int64
			if !squash && !drop {
				old = loadValue(mem, addrs[lane], in)
				storeValue(mem, addrs[lane], in, old+p2.eval(w, lane))
			}
			if in.Dst >= 0 {
				w.flat[lane*w.nregs+in.Dst] = old
			}
		}
	}

	// Atomic operations serialize per address in the atomic units: each
	// lane's op waits for the previous op on the same word, across the
	// whole GPU. This is what makes device malloc's shared heap-top
	// pointer a scalability cliff (§5.2.1).
	if in.Op == kernel.OpAtomAdd {
		const atomCycles = 2
		done := now + maxLat
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			word := addrs[lane] &^ 3
			start := now + maxLat
			if b := c.gpu.atomicBusy[word]; b > start {
				start = b
			}
			end := start + atomCycles
			c.gpu.atomicBusy[word] = end
			if end > done {
				done = end
			}
		}
		maxLat = done - now
	}

	// LSU occupancy: one cycle per transaction plus any BCU bubble; the
	// warp itself stalls until its data returns (a bubble delays the data
	// by the same amount).
	busy := now + uint64(nLines) + uint64(stall)
	if busy > c.lsuFreeAt {
		c.lsuFreeAt = busy
	}
	c.wake(w, now+maxLat+extra+uint64(stall))
	w.pc++
}

// checkOutcome is the protection verdict for one coalesced transaction.
type checkOutcome struct {
	squash bool // loads must return zero
	drop   bool // stores must be discarded
	stall  int
	extra  uint64
	fault  *core.Violation // first violation, for FailFault aborts
}

// checkTransaction is the single seam between the LSU and the protection
// mechanism: one call per warp-level memory instruction, after address
// generation and coalescing, carrying the transaction's pointer tag, byte
// range, and LSU visibility context (transaction count, L1D hit). All
// violation accounting, RCache service-level counters, and stall folding
// live here; a future ProtectionBackend interface (ROADMAP item 1) slots
// in at this boundary without the LSU knowing which mechanism is wired.
func (c *coreState) checkTransaction(w *warp, in *kernel.Instr, gmask uint64, prep *memPrep, singleTx, allHit bool, st *LaunchStats, l *driver.Launch) checkOutcome {
	var out checkOutcome
	tally := func(res core.CheckResult) {
		if !res.OK && out.fault == nil {
			out.fault = res.Violation
		}
		if !res.OK && l.Mailbox != nil {
			c.postViolation(l, res.Violation)
		}
		switch res.Level {
		case core.ServedL1:
			st.Checks++
			st.RL1Hits++
		case core.ServedL2:
			st.Checks++
			st.RL2Hits++
		case core.ServedRBT:
			st.Checks++
			st.RBTFetches++
		case core.ServedType3:
			st.Type3Checks++
		case core.ServedSkip:
			st.Skipped++
		}
		out.stall += res.Stall
		if res.ExtraLatency > out.extra {
			out.extra = res.ExtraLatency
		}
		st.BCUStalls += uint64(res.Stall)
		out.squash = out.squash || res.SquashLoad
		out.drop = out.drop || res.DropStore
	}
	req := core.CheckRequest{
		KernelID:          l.KernelID,
		Pointer:           prep.ptr,
		MinAddr:           prep.minAddr,
		MaxAddr:           prep.maxAddr,
		MinOfs:            prep.minOfs,
		MaxOfs:            prep.maxOfs,
		IsStore:           in.Op.IsStore(),
		PC:                w.pc,
		SingleTransaction: singleTx,
		L1DHit:            allHit,
	}
	if c.gpu.cfg.BCU.PerThread {
		// Ablation: one check per active lane instead of one per warp
		// instruction — the cost the address-gathering unit avoids.
		// The BCU retires one check per cycle, so the extra checks
		// occupy it (and hence the LSU slot) for lanes-1 extra cycles.
		bytes := uint64(in.Bytes)
		nchecks := 0
		for lanes := gmask; lanes != 0; {
			lane := bits.TrailingZeros64(lanes)
			lanes &^= 1 << uint(lane)
			lr := req
			lr.MinAddr = prep.addrs[lane]
			lr.MaxAddr = prep.addrs[lane] + bytes - 1
			lr.MinOfs = prep.offs[lane]
			lr.MaxOfs = prep.offs[lane] + int64(bytes) - 1
			tally(c.bcu.Check(lr))
			nchecks++
		}
		if nchecks > 1 {
			out.stall += nchecks - 1
			st.BCUStalls += uint64(nchecks - 1)
		}
	} else if e := prep.plan; e != nil {
		tally(c.bcu.CheckWarm(req, &e.vc))
	} else {
		tally(c.bcu.Check(req))
	}
	return out
}

// execShared handles on-chip scratchpad accesses: fixed latency, no
// LSU/BCU involvement.
func (c *coreState) execShared(w *warp, in *kernel.Instr, gmask uint64, now uint64) {
	st := w.wg.run.stats
	sh := w.wg.shared
	p0 := c.plan(w, in.Src[0])
	p2 := c.plan(w, in.Src[2])
	for lanes := gmask; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		st.SharedAccs++
		if len(sh) == 0 {
			if in.Op == kernel.OpLd && in.Dst >= 0 {
				w.flat[lane*w.nregs+in.Dst] = 0
			}
			continue
		}
		addr := int(uint64(p0.eval(w, lane)) % uint64(len(sh)))
		end := addr + in.Bytes
		if end > len(sh) {
			addr = len(sh) - in.Bytes
			end = len(sh)
		}
		switch in.Op {
		case kernel.OpLd:
			if in.Dst < 0 {
				continue
			}
			var raw uint64
			for i := addr; i < end; i++ {
				raw |= uint64(sh[i]) << (8 * uint(i-addr))
			}
			w.flat[lane*w.nregs+in.Dst] = widen(raw, in)
		case kernel.OpSt:
			raw := narrow(p2.eval(w, lane), in)
			for i := addr; i < end; i++ {
				sh[i] = byte(raw >> (8 * uint(i-addr)))
			}
		}
	}
	w.pc++
	c.wake(w, now+uint64(c.gpu.cfg.SharedLatency))
}

// loadValue reads one element, applying the IR's width and type rules:
// 4-byte integer loads sign-extend, 1/2-byte loads zero-extend, f32 loads
// widen to float64 bits. It takes the concrete backing store (not an
// interface) so the per-lane hot path is a direct, inlinable call.
func loadValue(mem *memsys.Backing, addr uint64, in *kernel.Instr) int64 {
	raw := mem.ReadUint(addr, in.Bytes)
	return widen(raw, in)
}

func widen(raw uint64, in *kernel.Instr) int64 {
	if in.F32 && in.Bytes == 4 {
		return kernel.F2B(float64(math.Float32frombits(uint32(raw))))
	}
	switch in.Bytes {
	case 8:
		return int64(raw)
	case 4:
		return int64(int32(uint32(raw)))
	default:
		return int64(raw)
	}
}

// storeValue writes one element, narrowing per the IR rules.
func storeValue(mem *memsys.Backing, addr uint64, in *kernel.Instr, v int64) {
	mem.WriteUint(addr, narrow(v, in), in.Bytes)
}

func narrow(v int64, in *kernel.Instr) uint64 {
	if in.F32 && in.Bytes == 4 {
		return uint64(math.Float32bits(float32(kernel.B2F(v))))
	}
	return uint64(v)
}

// postViolation appends a violation record to the launch's SVM mailbox
// (§5.5.2), so the host can see errors while the kernel is still running.
// Word 0 counts records; each record is {kind, pc, addr lo32, addr hi32}.
func (c *coreState) postViolation(l *driver.Launch, v *core.Violation) {
	mem := c.gpu.dev.Mem
	box := l.Mailbox
	count := mem.ReadUint32(box.Base)
	rec := box.Base + 4 + uint64(count)*16
	if rec+16 > box.Base+box.Size {
		return // mailbox full; the end-of-kernel log still has everything
	}
	mem.WriteUint32(rec, uint32(v.Kind))
	mem.WriteUint32(rec+4, uint32(v.PC))
	mem.WriteUint32(rec+8, uint32(v.MinAddr))
	mem.WriteUint32(rec+12, uint32(v.MinAddr>>32))
	mem.WriteUint32(box.Base, count+1)
}

// abortRun terminates a kernel run after a fault: all of its resident
// workgroups are torn down across every core.
func (g *GPU) abortRun(r *kernelRun, msg string) {
	if r.aborted {
		return
	}
	r.aborted = true
	r.stats.Aborted = true
	r.stats.AbortMsg = msg
	for _, c := range g.cores {
		torn := false
		for _, wg := range append([]*workgroup(nil), c.wgs...) {
			if wg.run != r {
				continue
			}
			for _, w := range wg.warps {
				w.done = true
			}
			wg.live = 0
			c.removeWorkgroup(wg)
			torn = true
		}
		if torn {
			// The stored wake time may reference warps that no longer
			// exist. Forcing a visit now makes the next tryIssue scan
			// recompute it from the surviving warps, keeping nextEvent
			// exact (and hence the visited-cycle sequence unchanged).
			g.wakes.set(c.id, g.now)
		}
	}
	r.liveWGs = 0
}
