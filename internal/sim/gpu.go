package sim

import (
	"context"
	"fmt"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
	"gpushield/internal/memsys"
)

// cancelCheckInterval is how many scheduling steps pass between polls of the
// run context's Done channel. The poll is a non-blocking select, but even
// that is too expensive per step on the hot path; every 1024 steps the
// latency between Ctrl-C and the abort stays far below a millisecond of
// wall clock while the cost disappears into the noise. Contexts that can
// never be canceled (Done() == nil, e.g. context.Background) are detected
// once up front and never polled at all.
const cancelCheckInterval = 1024

// ShareMode selects how concurrent kernels share the GPU (§6.2).
type ShareMode uint8

const (
	// ShareInterCore partitions the cores evenly between kernels.
	ShareInterCore ShareMode = iota
	// ShareIntraCore lets every kernel's workgroups run on any core, so
	// kernels share cores (and their RCaches) at fine grain.
	ShareIntraCore
)

func (m ShareMode) String() string {
	if m == ShareIntraCore {
		return "intra-core"
	}
	return "inter-core"
}

// GPU is one simulated device instance, built over a driver.Device whose
// memory holds the kernels' data. A GPU's methods must not be called
// concurrently from multiple goroutines — but internally one launch may
// step its simulated cores on several OS threads (Config.CoreParallel, the
// two-phase deterministic scheduler): core-private work runs in parallel,
// shared-state effects commit serially in core-id order, and the results
// are byte-identical to serial stepping at every width.
type GPU struct {
	cfg   Config
	dev   *driver.Device
	cores []*coreState

	// coreWidth is the resolved CoreParallel value: how many OS threads
	// step the cores inside one launch (1 = serial stepping).
	coreWidth int

	l2    *memsys.Cache
	l2tlb *memsys.TLB
	dram  *memsys.DRAM

	now        uint64
	trackPages bool

	// wakes tracks, per core, the earliest cycle at which that core might
	// issue; the scheduling loop only visits cores whose wake time has
	// arrived, and the next idle-skip target is the heap minimum. See
	// DESIGN.md "Event-driven scheduler" for the invariants.
	wakes *wakeHeap
	// dispatchNeeded is set when a workgroup slot frees (retire, abort) or a
	// launch starts; dispatch runs only then instead of every cycle.
	dispatchNeeded bool

	// cycleHook, when set, runs once per simulated scheduling step; the
	// fault-injection engine uses it to corrupt microarchitectural state
	// (RCache entries, keys) at a chosen cycle.
	cycleHook func(now uint64)
	// txFault, when set, is consulted once per warp-level global-memory
	// instruction and can drop or duplicate its DRAM-bound transactions.
	txFault TxFaultFunc

	// atomicBusy serializes atomic operations to the same word: GPUs
	// resolve same-address atomics one at a time in the L2 atomic units,
	// which is what makes massively parallel device malloc slow (§5.2.1).
	atomicBusy map[uint64]uint64

	// sbCache memoizes per-kernel superblock pre-decode tables (see
	// superblock.go); noSuperblocks is the resolved NoSuperblocks flag.
	sbCache       map[*kernel.Kernel][]int32
	noSuperblocks bool

	// noMemPlans is the resolved NoMemPlans flag: it forces the reference
	// per-lane LSU path instead of warp memory plans (see memplan.go).
	noMemPlans bool

	// aluLat is aluLatency pre-resolved per opcode, indexed by kernel.Op:
	// one load on the per-issue path instead of a switch.
	aluLat [256]uint16

	// Per-invocation scratch, recycled so a steady-state launch on a warm
	// GPU allocates nothing beyond its caller-escaping report: run shells
	// (runPool), the active-run list (runs), the per-core dispatch lists
	// (allowed), and the single-launch slice RunCtx hands to
	// RunConcurrentCtx (oneLaunch). The shells' launch/stats/pages/sbLens
	// pointers are cleared on release so a parked shell pins nothing.
	runPool   []*kernelRun
	runs      []*kernelRun
	allowed   [][]*kernelRun
	oneLaunch [1]*driver.Launch
}

// TxVerdict is a fault-injection decision for one memory instruction's
// coalesced transactions: Drop loses them (stores silently discarded, loads
// return zeros), Dup re-issues them (timing disturbance only).
type TxVerdict struct {
	Drop bool
	Dup  bool
}

// TxFaultFunc decides the fault verdict for one global-memory instruction.
type TxFaultFunc func(now uint64, addr uint64, isStore bool) TxVerdict

// NewGPU builds a GPU from cfg operating on dev's memory, rejecting invalid
// configurations with an error wrapping ErrInvalidConfig.
func NewGPU(cfg Config, dev *driver.Device) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{
		cfg:        cfg,
		dev:        dev,
		l2:         memsys.MustCache(cfg.L2),
		l2tlb:      memsys.MustTLB(cfg.L2TLB),
		dram:       memsys.NewDRAM(cfg.DRAM),
		atomicBusy: make(map[uint64]uint64),
		wakes:      newWakeHeap(cfg.Cores),
		sbCache:    make(map[*kernel.Kernel][]int32),
	}
	g.coreWidth = cfg.resolveCoreParallel()
	g.noSuperblocks = cfg.resolveNoSuperblocks()
	g.noMemPlans = cfg.resolveNoMemPlans()
	for op := range g.aluLat {
		g.aluLat[op] = uint16(aluLatency(&g.cfg, kernel.Op(op)))
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &coreState{
			id:    i,
			gpu:   g,
			l1d:   memsys.MustCache(cfg.L1D),
			l1tlb: memsys.MustTLB(cfg.L1TLB),
		}
		if cfg.EnableBCU {
			c.bcu = core.NewBCU(cfg.BCU)
			c.bcu.SetRBTFetcher(g.fetchRBT)
		}
		g.cores = append(g.cores, c)
	}
	return g, nil
}

// New is NewGPU for known-good preset configurations; it panics on an
// invalid config and must not be fed runtime input (use NewGPU for that).
func New(cfg Config, dev *driver.Device) *GPU {
	g, err := NewGPU(cfg, dev)
	if err != nil {
		panic(err)
	}
	return g
}

// SetCycleHook installs (or clears, with nil) the per-step callback used by
// fault-injection campaigns to corrupt state at a chosen cycle.
func (g *GPU) SetCycleHook(f func(now uint64)) { g.cycleHook = f }

// SetTxFault installs (or clears, with nil) the DRAM-transaction fault hook.
func (g *GPU) SetTxFault(f TxFaultFunc) { g.txFault = f }

// Config returns the GPU configuration.
func (g *GPU) Config() Config { return g.cfg }

// Device returns the underlying device.
func (g *GPU) Device() *driver.Device { return g.dev }

// Now returns the current cycle.
func (g *GPU) Now() uint64 { return g.now }

// TrackPages enables the per-buffer 4 KB page-touch census (Fig. 11).
func (g *GPU) TrackPages(on bool) { g.trackPages = on }

// SetMaxCycles rearms the kernel watchdog for subsequent runs: the next
// RunConcurrent invocation aborts after n simulated cycles (0 disables the
// watchdog). Serving loops use it to enforce a per-request cycle budget on a
// long-lived GPU — e.g. the minimum of a per-launch cap and a tenant's
// remaining quota — without rebuilding the simulator. It must not be called
// while a run is in flight.
func (g *GPU) SetMaxCycles(n uint64) { g.cfg.MaxCycles = n }

// BCU exposes core 0's BCU for inspection in tests.
func (g *GPU) BCU(coreID int) *core.BCU { return g.cores[coreID].bcu }

// fetchRBT services an L2 RCache miss from the in-memory RBT: a real
// device-memory access through the shared L2/DRAM path (§5.5).
func (g *GPU) fetchRBT(rbtBase uint64, id uint16) (core.Bounds, uint64) {
	addr := core.EntryAddr(rbtBase, id)
	var lat uint64
	if g.l2.Access(addr) {
		lat = uint64(g.cfg.L2Latency)
	} else {
		done := g.dram.Access(g.now, addr)
		lat = done - g.now + uint64(g.cfg.L2Latency)
	}
	return core.DecodeBounds(g.dev.Mem.ReadBytes(addr, core.BoundsEntryBytes)), lat
}

// memAccess walks one coalesced transaction through the TLBs and cache
// hierarchy, returning its latency and whether it hit in the L1 Dcache.
func (g *GPU) memAccess(c *coreState, st *LaunchStats, addr uint64) (lat uint64, l1Hit bool) {
	// Address translation, overlapped with the L1 tag probe on a hit.
	if !c.l1tlb.Access(addr) {
		st.L1TLBMisses++
		if g.l2tlb.Access(addr) {
			lat += uint64(g.cfg.L2TLBLatency)
		} else {
			st.L2TLBMisses++
			lat += uint64(g.cfg.PageWalk)
		}
	}
	st.L1DAccesses++
	if c.l1d.Access(addr) {
		st.L1DHits++
		return lat + uint64(g.cfg.L1D.HitLatency), true
	}
	st.L2Accesses++
	if g.l2.Access(addr) {
		st.L2Hits++
		return lat + uint64(g.cfg.L1D.HitLatency) + uint64(g.cfg.L2Latency), false
	}
	done := g.dram.Access(g.now+lat, addr)
	return done - g.now + uint64(g.cfg.L2Latency), false
}

// kernelRun is the in-flight state of one launch.
type kernelRun struct {
	launch    *driver.Launch
	stats     *LaunchStats
	nextWG    int
	liveWGs   int
	started   bool
	aborted   bool
	pages     []map[uint64]struct{} // per arg index
	cores     []int                 // cores this kernel may occupy
	coresUsed map[int]struct{}      // cores that actually ran workgroups
	sbLens    []int32               // superblock pre-decode table (nil = disabled)
}

// runPoolCap bounds how many retired run shells a GPU parks for reuse.
const runPoolCap = 64

// acquireRun returns a reset run shell, recycling a parked one when
// available. The stats report is always freshly allocated by the caller:
// it escapes to the user and must outlive the shell.
func (g *GPU) acquireRun() *kernelRun {
	if n := len(g.runPool); n > 0 {
		r := g.runPool[n-1]
		g.runPool[n-1] = nil
		g.runPool = g.runPool[:n-1]
		*r = kernelRun{cores: r.cores[:0], coresUsed: r.coresUsed}
		clear(r.coresUsed)
		return r
	}
	return &kernelRun{coresUsed: make(map[int]struct{})}
}

// releaseRuns parks the finished invocation's run shells for reuse and
// clears every pointer they (and the dispatch scratch) hold, so the pool
// pins neither the escaped reports nor the launches.
func (g *GPU) releaseRuns() {
	for i, r := range g.runs {
		r.launch, r.stats, r.pages, r.sbLens = nil, nil, nil, nil
		if len(g.runPool) < runPoolCap {
			g.runPool = append(g.runPool, r)
		}
		g.runs[i] = nil
	}
	g.runs = g.runs[:0]
	for i := range g.allowed {
		s := g.allowed[i][:cap(g.allowed[i])]
		clear(s)
		g.allowed[i] = s[:0]
	}
}

func (r *kernelRun) dispatched() bool { return r.nextWG >= r.launch.Grid }

func (r *kernelRun) finished() bool {
	return (r.dispatched() && r.liveWGs == 0 && r.started) || r.aborted
}

// Run executes a single launch to completion and returns its statistics.
// On a watchdog abort the partial report is returned together with the
// error, so callers can still inspect what happened up to the abort.
func (g *GPU) Run(l *driver.Launch) (*LaunchStats, error) {
	return g.RunCtx(context.Background(), l)
}

// RunCtx is Run under a context: cancellation (Ctrl-C, a deadline) aborts
// the launch within cancelCheckInterval scheduling steps, returning the
// partial report together with an error matching ErrCanceled. A background
// context makes RunCtx identical to Run, including its cost.
func (g *GPU) RunCtx(ctx context.Context, l *driver.Launch) (*LaunchStats, error) {
	g.oneLaunch[0] = l
	res, err := g.RunConcurrentCtx(ctx, g.oneLaunch[:], ShareIntraCore)
	g.oneLaunch[0] = nil
	if len(res) == 1 {
		return res[0], err
	}
	return nil, err
}

// RunConcurrent executes several launches simultaneously under the given
// sharing mode and returns per-launch statistics in input order.
func (g *GPU) RunConcurrent(launches []*driver.Launch, mode ShareMode) ([]*LaunchStats, error) {
	return g.RunConcurrentCtx(context.Background(), launches, mode)
}

// RunConcurrentCtx is RunConcurrent under a context. Cancellation is polled
// every cancelCheckInterval scheduling steps alongside the watchdog: every
// unfinished run is aborted with a partial report (Aborted set, AbortMsg
// naming the cancellation cause) and the returned error matches ErrCanceled.
// Runs that had already finished keep their complete reports.
func (g *GPU) RunConcurrentCtx(ctx context.Context, launches []*driver.Launch, mode ShareMode) ([]*LaunchStats, error) {
	if len(launches) == 0 {
		return nil, fmt.Errorf("%w: no launches", driver.ErrInvalidLaunch)
	}
	for _, l := range launches {
		if l == nil || l.Kernel == nil {
			return nil, fmt.Errorf("%w: nil launch", driver.ErrInvalidLaunch)
		}
		if l.Block > g.cfg.MaxThreadsPerCore {
			return nil, fmt.Errorf("%w: %s: block of %d exceeds %d threads per core",
				driver.ErrInvalidLaunch, l.Kernel.Name, l.Block, g.cfg.MaxThreadsPerCore)
		}
	}
	runs := g.runs[:0]
	for _, l := range launches {
		r := g.acquireRun()
		r.launch = l
		r.stats = &LaunchStats{
			Kernel: l.Kernel.Name, Mode: l.Mode.String(), StartCycle: g.now,
		}
		r.sbLens = g.superblocks(l.Kernel)
		if g.trackPages {
			r.pages = make([]map[uint64]struct{}, len(l.Args))
			for j := range r.pages {
				r.pages[j] = make(map[uint64]struct{})
			}
		}
		runs = append(runs, r)
	}
	g.runs = runs
	defer g.releaseRuns()

	// Core assignment.
	switch {
	case len(runs) == 1 || mode == ShareIntraCore:
		for _, r := range runs {
			for c := 0; c < g.cfg.Cores; c++ {
				r.cores = append(r.cores, c)
			}
		}
	default: // inter-core partitioning
		per := g.cfg.Cores / len(runs)
		if per == 0 {
			per = 1
		}
		for i, r := range runs {
			lo := i * per
			hi := lo + per
			if i == len(runs)-1 || hi > g.cfg.Cores {
				hi = g.cfg.Cores
			}
			for c := lo; c < hi; c++ {
				r.cores = append(r.cores, c)
			}
		}
	}

	// Program the per-kernel key and RBT location into each core's BCU.
	if g.cfg.EnableBCU {
		for _, r := range runs {
			for _, ci := range r.cores {
				g.cores[ci].bcu.InstallKernel(r.launch.KernelID, r.launch.Key, r.launch.RBT, r.launch.RBTBase)
			}
		}
	}

	// Round-robin dispatch cursors per core over the runs allowed there.
	if len(g.allowed) != g.cfg.Cores {
		g.allowed = make([][]*kernelRun, g.cfg.Cores)
	}
	allowed := g.allowed
	for i := range allowed {
		allowed[i] = allowed[i][:0]
	}
	for _, r := range runs {
		for _, ci := range r.cores {
			allowed[ci] = append(allowed[ci], r)
		}
	}

	live := len(runs)
	t0 := g.now
	var werr error
	// Captured once: a nil Done channel (context.Background and friends)
	// means the context can never be canceled, so the loop never polls it.
	done := ctx.Done()
	var steps uint64
	// A context that is already dead aborts before the first cycle: short
	// kernels can otherwise finish inside the first poll interval and make
	// cancellation look like success.
	if done != nil {
		select {
		case <-done:
			cause := context.Cause(ctx)
			g.abortUnfinished(runs, "canceled: "+cause.Error())
			stats := make([]*LaunchStats, len(runs))
			for i, r := range runs {
				stats[i] = r.stats
			}
			return stats, fmt.Errorf("%w: %v", ErrCanceled, cause)
		default:
		}
	}
	g.wakes.reset()
	g.dispatchNeeded = false
	g.dispatch(allowed)
	// Parallel core stepping (Config.CoreParallel): phase-A workers live for
	// this invocation only, parked between cycles. Fault hooks stay cycle-
	// deterministic: cycleHook fires below on this goroutine before any core
	// steps, and txFault fires inside the serial commit in core-id order.
	var cw *coreWorkers
	if g.coreWidth > 1 {
		cw = newCoreWorkers(g, g.coreWidth)
		defer cw.stop()
	}
	for live > 0 {
		if g.cycleHook != nil {
			g.cycleHook(g.now)
		}
		var issued bool
		if cw != nil {
			issued = g.stepParallel(cw)
		} else {
			issued = g.stepSerial()
		}
		// Kernel watchdog: a run that exhausts the cycle budget — or can
		// provably never make progress again (every resident warp parked at
		// a barrier that will not release) — is aborted with a partial
		// report instead of spinning forever.
		if werr == nil {
			switch {
			case g.cfg.MaxCycles > 0 && g.now-t0 >= g.cfg.MaxCycles:
				msg := fmt.Sprintf("watchdog: MaxCycles=%d exceeded", g.cfg.MaxCycles)
				werr = fmt.Errorf("%w: %s", ErrWatchdog, msg)
				g.abortUnfinished(runs, msg)
			case !issued && g.deadlocked():
				msg := "watchdog: barrier deadlock, no resident warp can progress"
				werr = fmt.Errorf("%w: %s", ErrWatchdog, msg)
				g.abortUnfinished(runs, msg)
			}
		}
		// Cancellation poll, next to the watchdog: a canceled context aborts
		// every unfinished run with a partial report. The poll never mutates
		// simulator state on the not-canceled path, so enabling it cannot
		// perturb golden statistics.
		steps++
		if werr == nil && done != nil && steps%cancelCheckInterval == 0 {
			select {
			case <-done:
				cause := context.Cause(ctx)
				msg := "canceled: " + cause.Error()
				werr = fmt.Errorf("%w: %v", ErrCanceled, cause)
				g.abortUnfinished(runs, msg)
			default:
			}
		}
		// Retire finished runs and refill free workgroup slots.
		for _, r := range runs {
			if r.stats.FinishCycle == 0 && r.finished() {
				r.stats.FinishCycle = g.now + 1
				live--
				if g.cfg.EnableBCU {
					for _, ci := range r.cores {
						g.harvestBCU(g.cores[ci], r)
					}
					for _, ci := range r.cores {
						g.cores[ci].bcu.RemoveKernel(r.launch.KernelID)
					}
				}
				g.pruneAtomicBusy()
			}
		}
		if live == 0 {
			break
		}
		if g.dispatchNeeded {
			g.dispatchNeeded = false
			g.dispatch(allowed)
		}
		if issued {
			g.now++
		} else {
			g.now = g.nextEvent()
		}
	}

	for _, r := range runs {
		r.stats.CoresUsed = len(r.coresUsed)
		if g.trackPages {
			r.stats.PagesPerBuffer = make(map[string]int)
			for j, m := range r.pages {
				if b := r.launch.ArgBuffers[j]; b != nil {
					r.stats.PagesPerBuffer[b.Name] = len(m)
				}
			}
		}
	}
	stats := make([]*LaunchStats, len(runs))
	for i, r := range runs {
		stats[i] = r.stats
	}
	return stats, werr
}

// stepSerial visits every core in ascending id order on the calling
// goroutine and lets each issue at most one instruction — the reference
// scheduler whose observable effects the parallel path must reproduce
// bit-for-bit. It is also the fallback for cycles the parallel path cannot
// prove abort-free.
func (g *GPU) stepSerial() bool {
	issued := false
	now := g.now
	// Iterate the wake array directly: cores that provably cannot issue yet
	// — their wake time is maintained at issue, barrier release, retire, and
	// dispatch — cost one load and compare each.
	for id, t := range g.wakes.wake {
		if t > now {
			continue
		}
		if g.cores[id].tryIssue(now) {
			issued = true
		}
	}
	return issued
}

// abortUnfinished tears down every run that has not completed, attributing
// the abort to the watchdog. Finished runs keep their reports untouched.
func (g *GPU) abortUnfinished(runs []*kernelRun, msg string) {
	for _, r := range runs {
		if r.stats.FinishCycle == 0 && !r.finished() {
			g.abortRun(r, msg)
		}
	}
}

// deadlocked reports whether the resident warp population can provably never
// issue again: at least one warp is live and every live warp is parked at a
// workgroup barrier. (A warp merely waiting on a latency or the LSU has a
// future ready time and does not count.) Since barrier release is driven
// only by other warps arriving or retiring, this state is permanent.
func (g *GPU) deadlocked() bool {
	stuck := false
	for _, c := range g.cores {
		for _, w := range c.warps {
			if w.done {
				continue
			}
			if !w.atBarrier {
				return false
			}
			stuck = true
		}
	}
	return stuck
}

// harvestBCU folds a core's per-kernel violation log into the run's stats.
// Counter attribution happens at check time; only the violation records and
// fault state need collecting here. The records are consumed, not copied:
// kernel IDs recycle across launches, and a GPU serving many launches must
// not leak one kernel's violations into a later launch that draws the same
// ID (nor grow the log without bound).
func (g *GPU) harvestBCU(c *coreState, r *kernelRun) {
	if v, ok := c.bcu.Faulted(); ok && v.KernelID == r.launch.KernelID {
		r.stats.Violations = append(r.stats.Violations, v)
	}
	r.stats.Violations = append(r.stats.Violations, c.bcu.TakeViolations(r.launch.KernelID)...)
}

// dispatch fills free core slots with pending workgroups, round-robin over
// the kernels allowed on each core.
func (g *GPU) dispatch(allowed [][]*kernelRun) {
	for ci, c := range g.cores {
		runs := allowed[ci]
		if len(runs) == 0 {
			continue
		}
		for {
			placed := false
			for k := 0; k < len(runs); k++ {
				r := runs[(c.rrRun+k)%len(runs)]
				if r.aborted || r.dispatched() {
					continue
				}
				l := r.launch
				if c.threadsUsed+l.Block > g.cfg.MaxThreadsPerCore || len(c.wgs) >= g.cfg.MaxWGsPerCore {
					continue
				}
				c.placeWorkgroup(r, r.nextWG, g.now)
				r.coresUsed[c.id] = struct{}{}
				r.nextWG++
				r.liveWGs++
				r.started = true
				c.rrRun = (c.rrRun + k + 1) % len(runs)
				placed = true
				break
			}
			if !placed {
				break
			}
		}
	}
}

// nextEvent returns the earliest future cycle at which any warp can issue:
// a peek at the core wake-time heap. The heap is exact whenever this is
// called — a scheduling step reaches nextEvent only when no core issued, so
// every core whose wake had arrived just recomputed its wake in a failed
// tryIssue scan, and the remaining cores' wakes were maintained by the
// events (issue, barrier release, placement, abort) that could move them.
func (g *GPU) nextEvent() uint64 {
	next := g.wakes.min()
	if next == farFuture || next <= g.now {
		return g.now + 1
	}
	return next
}

// pruneAtomicBusy drops atomic-unit reservations that ended at or before the
// current cycle. Run at launch retire, it keeps the map from accumulating
// one entry per atomically-touched word across a long campaign on a reused
// GPU; entries with busyUntil <= now can never delay a future atomic (every
// future start time is >= now), so dropping them cannot change timing.
func (g *GPU) pruneAtomicBusy() {
	for word, busy := range g.atomicBusy {
		if busy <= g.now {
			delete(g.atomicBusy, word)
		}
	}
}
