package sim

import (
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// BenchmarkSimulatorThroughput measures host-side simulation speed in warp
// instructions per second, with and without the BCU, on a representative
// compute+memory kernel. This is the metric to watch when optimizing the
// simulation loop itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	build := func() (*kernel.Kernel, int) {
		kb := kernel.NewBuilder("throughput")
		p := kb.BufferParam("p", false)
		gtid := kb.GlobalTID()
		acc := kb.Mov(gtid)
		kb.ForRange(kernel.Imm(0), kernel.Imm(16), kernel.Imm(1), func(i kernel.Operand) {
			v := kb.LoadGlobal(kb.AddScaled(p, kb.And(kb.Add(gtid, i), kernel.Imm(4095)), 4), 4)
			kb.MovTo(acc, kb.Add(acc, v))
		})
		kb.StoreGlobal(kb.AddScaled(p, gtid, 4), acc, 4)
		return kb.MustBuild(), 4096
	}
	for _, shield := range []bool{false, true} {
		name := "off"
		if shield {
			name = "shield"
		}
		b.Run(name, func(b *testing.B) {
			// Steady state: the device and GPU live across iterations, so
			// one op is one launch on a warm simulator — the arena-recycled
			// path a long-lived service daemon runs. Construction cost is
			// measured separately (BenchmarkLaunchAllocs covers the
			// allocation side).
			k, n := build()
			dev := driver.NewDevice(1)
			buf := dev.Malloc("p", uint64(n*4), false)
			mode := driver.ModeOff
			cfg := NvidiaConfig()
			if shield {
				mode = driver.ModeShield
				cfg = cfg.WithShield(core.DefaultBCUConfig())
			}
			gpu := New(cfg, dev)
			var instrs uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, err := dev.PrepareLaunch(k, n/256, 256, []driver.Arg{driver.BufArg(buf)}, mode, nil)
				if err != nil {
					b.Fatal(err)
				}
				st, err := gpu.Run(l)
				if err != nil {
					b.Fatal(err)
				}
				instrs += st.WarpInstrs
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "warp-instrs/s")
		})
	}
}
