package sim

import (
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// TestViolationMailbox checks the §5.5.2 runtime-reporting path: with an
// SVM mailbox attached, violation records appear in shared memory the host
// can read, with the right kind, PC, and faulting address.
func TestViolationMailbox(t *testing.T) {
	dev := driver.NewDevice(12)
	buf := dev.Malloc("buf", 256, false)
	box := dev.MallocManaged("mailbox", 4096)

	b := kernel.NewBuilder("oob-mail")
	p := b.BufferParam("buf", false)
	first := b.SetEQ(b.GlobalTID(), kernel.Imm(0))
	b.If(first, func() {
		b.StoreGlobal(b.AddScaled(p, kernel.Imm(1000), 4), kernel.Imm(1), 4)
		b.StoreGlobal(b.AddScaled(p, kernel.Imm(2000), 4), kernel.Imm(2), 4)
	})
	k := b.MustBuild()

	l, err := dev.PrepareLaunch(k, 1, 32, []driver.Arg{driver.BufArg(buf)}, driver.ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Mailbox = box
	st, err := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Violations) != 2 {
		t.Fatalf("want 2 violations, got %d", len(st.Violations))
	}
	if got := dev.Mem.ReadUint32(box.Base); got != 2 {
		t.Fatalf("mailbox count = %d, want 2", got)
	}
	// First record: OOB at buf.Base + 4000.
	rec := box.Base + 4
	if kind := dev.Mem.ReadUint32(rec); kind != uint32(core.ViolationOOB) {
		t.Fatalf("record kind = %d", kind)
	}
	addr := uint64(dev.Mem.ReadUint32(rec+8)) | uint64(dev.Mem.ReadUint32(rec+12))<<32
	if addr != buf.Base+4000 {
		t.Fatalf("record addr = %#x, want %#x", addr, buf.Base+4000)
	}
}

// TestMailboxCapacityBounded fills the mailbox past its capacity and
// verifies the writer stops at the boundary instead of overflowing —
// the reporting channel must not itself become a corruption vector.
func TestMailboxCapacityBounded(t *testing.T) {
	dev := driver.NewDevice(13)
	buf := dev.Malloc("buf", 64, false)
	box := dev.MallocManaged("mailbox", 4+2*16) // room for 2 records
	guardBuf := dev.MallocManaged("after", 64)
	dev.WriteUint32(guardBuf, 0, 0x600D)

	b := kernel.NewBuilder("oob-flood")
	p := b.BufferParam("buf", false)
	// Four warps each issue an out-of-bounds store (checks are warp-level,
	// so that is four violation records against a two-record mailbox).
	idx := b.Add(b.GlobalTID(), kernel.Imm(1<<12))
	b.StoreGlobal(b.AddScaled(p, idx, 4), kernel.Imm(1), 4)
	k := b.MustBuild()

	l, err := dev.PrepareLaunch(k, 1, 128, []driver.Arg{driver.BufArg(buf)}, driver.ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Mailbox = box
	if _, err := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev).Run(l); err != nil {
		t.Fatal(err)
	}
	if got := dev.Mem.ReadUint32(box.Base); got != 2 {
		t.Fatalf("mailbox recorded %d, want capacity 2", got)
	}
}

// TestPartitionedRCachesIsolateKernels checks the §6.2 mitigation: with
// two RCache banks, one kernel's bounds stream cannot evict the other's
// entries.
func TestPartitionedRCachesIsolateKernels(t *testing.T) {
	cfg := core.DefaultBCUConfig()
	cfg.L1Entries = 1 // tiny, so cross-kernel eviction is immediate if shared
	cfg.Partitions = 2
	b := core.NewBCU(cfg)
	key := uint64(7)
	rbtA, rbtB := core.NewRBT(), core.NewRBT()
	rbtA.Set(5, core.NewBounds(0x1000, 0x100, false))
	rbtB.Set(9, core.NewBounds(0x8000, 0x100, false))
	b.InstallKernel(2, key, rbtA, 0) // bank 0
	b.InstallKernel(3, key, rbtB, 0) // bank 1

	reqA := core.CheckRequest{KernelID: 2,
		Pointer: core.MakePointer(core.ClassID, core.EncryptID(5, key), 0x1000),
		MinAddr: 0x1000, MaxAddr: 0x1003, SingleTransaction: true, L1DHit: true}
	reqB := core.CheckRequest{KernelID: 3,
		Pointer: core.MakePointer(core.ClassID, core.EncryptID(9, key), 0x8000),
		MinAddr: 0x8000, MaxAddr: 0x8003, SingleTransaction: true, L1DHit: true}

	b.Check(reqA) // fills bank 0
	b.Check(reqB) // fills bank 1 — must NOT evict kernel 2's entry
	if res := b.Check(reqA); res.Level != core.ServedL1 {
		t.Fatalf("partitioned bank evicted the co-runner's entry: served from %v", res.Level)
	}
	if res := b.Check(reqB); res.Level != core.ServedL1 {
		t.Fatalf("bank 1 lost its entry: %v", res.Level)
	}
}
