package sim

import (
	"math/rand"
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// TestNoCoalesceInflatesTransactions verifies the per-thread-traffic mode
// used by the CUDA-MEMCHECK model.
func TestNoCoalesceInflatesTransactions(t *testing.T) {
	run := func(noCoalesce bool) uint64 {
		dev := driver.NewDevice(1)
		const n = 1024
		buf := dev.Malloc("b", n*4, false)
		b := kernel.NewBuilder("stream")
		p := b.BufferParam("b", false)
		b.StoreGlobal(b.AddScaled(p, b.GlobalTID(), 4), kernel.Imm(1), 4)
		k := b.MustBuild()
		l, err := dev.PrepareLaunch(k, n/128, 128, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.NoCoalesce = noCoalesce
		st, err := New(NvidiaConfig(), dev).Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return st.Transactions
	}
	coalesced := run(false)
	split := run(true)
	// 128B lines hold 32 4-byte elements: a fully coalesced warp store is
	// one transaction; uncoalesced is one per lane.
	if split < 16*coalesced {
		t.Fatalf("NoCoalesce: %d vs %d transactions", split, coalesced)
	}
}

// TestAtomicSameAddressSerializes checks the global atomic-serialization
// model that drives the §5.2.1 heap microbenchmark.
func TestAtomicSameAddressSerializes(t *testing.T) {
	run := func(sameAddr bool) uint64 {
		dev := driver.NewDevice(2)
		const n = 2048
		buf := dev.Malloc("counters", n*8, false)
		b := kernel.NewBuilder("atom")
		p := b.BufferParam("counters", false)
		var addr kernel.Operand
		if sameAddr {
			addr = b.AddScaled(p, kernel.Imm(0), 8)
		} else {
			addr = b.AddScaled(p, b.GlobalTID(), 8)
		}
		b.AtomAddGlobal(addr, kernel.Imm(1), 8)
		k := b.MustBuild()
		l, err := dev.PrepareLaunch(k, n/128, 128, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(NvidiaConfig(), dev).Run(l)
		if err != nil {
			t.Fatal(err)
		}
		if sameAddr {
			if got := dev.ReadUint64(buf, 0); got != n {
				t.Fatalf("atomic sum = %d, want %d", got, n)
			}
		}
		return st.Cycles()
	}
	contended := run(true)
	spread := run(false)
	if contended < 2*spread {
		t.Fatalf("same-address atomics should serialize: %d vs %d cycles", contended, spread)
	}
}

// TestTLBMissesTracked drives a page-stride pattern through the TLBs.
func TestTLBMissesTracked(t *testing.T) {
	dev := driver.NewDevice(3)
	// 512 threads, each touching its own 4KB page.
	const n = 512
	buf := dev.Malloc("big", n*4096, false)
	b := kernel.NewBuilder("pagestride")
	p := b.BufferParam("big", false)
	b.StoreGlobal(b.AddScaled(p, b.GlobalTID(), 4096), kernel.Imm(7), 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, n/128, 128, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(NvidiaConfig(), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.L1TLBMisses < n/2 {
		t.Fatalf("page-stride kernel should miss the TLB heavily: %d misses", st.L1TLBMisses)
	}
}

// TestAbortCleansUpAllCores launches a faulting kernel big enough to
// occupy every core and checks the abort drains everything.
func TestAbortCleansUpAllCores(t *testing.T) {
	dev := driver.NewDevice(4)
	buf := dev.Malloc("b", 1024, false)
	b := kernel.NewBuilder("faulty")
	p := b.BufferParam("b", false)
	_ = p
	// Every thread stores to an unmapped address.
	addr := b.Mov(kernel.Imm(0x7A00_0000_0000))
	b.StoreGlobal(addr, kernel.Imm(1), 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, 64, 256, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(NvidiaConfig(), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Aborted {
		t.Fatalf("expected abort")
	}
}

// TestShieldPreventsFaultFromOOB shows the ordering guarantee: the BCU
// drops the wild store before it can raise a page fault.
func TestShieldPreventsFaultFromOOB(t *testing.T) {
	dev := driver.NewDevice(5)
	buf := dev.Malloc("b", 1024, false)
	b := kernel.NewBuilder("wild")
	p := b.BufferParam("b", false)
	b.StoreGlobal(b.AddScaled(p, kernel.Imm(1<<32), 4), kernel.Imm(1), 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, 1, 32, []driver.Arg{driver.BufArg(buf)}, driver.ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted {
		t.Fatalf("shield should squash the store, not fault: %s", st.AbortMsg)
	}
	if len(st.Violations) == 0 {
		t.Fatalf("violation missing")
	}
}

// TestLocalMemoryFunctional checks per-thread local variables really are
// private despite the interleaved layout.
func TestLocalMemoryFunctional(t *testing.T) {
	dev := driver.NewDevice(6)
	const n = 128
	out := dev.Malloc("out", n*4, false)
	b := kernel.NewBuilder("localpriv")
	pout := b.BufferParam("out", false)
	v := b.Local("v", 16)
	gtid := b.GlobalTID()
	// Each thread stores tid*10 into its own local slot, then reads it back.
	b.StoreLocal(v, kernel.Imm(4), b.Mul(gtid, kernel.Imm(10)), 4)
	rd := b.LoadLocal(v, kernel.Imm(4), 4)
	b.StoreGlobal(b.AddScaled(pout, gtid, 4), rd, 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, 2, 64, []driver.Arg{driver.BufArg(out)}, driver.ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(NvidiaConfig().WithShield(core.DefaultBCUConfig()), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Violations) > 0 {
		t.Fatalf("benign local accesses flagged: %v", st.Violations[0])
	}
	for i := 0; i < n; i++ {
		if got := dev.ReadUint32(out, i); got != uint32(i*10) {
			t.Fatalf("thread %d read %d, want %d — local memory not private", i, got, i*10)
		}
	}
}

// TestSignExtensionOnLoad verifies 4-byte integer loads sign-extend.
func TestSignExtensionOnLoad(t *testing.T) {
	dev := driver.NewDevice(7)
	buf := dev.Malloc("b", 256, false)
	out := dev.Malloc("out", 256, false)
	dev.WriteUint32(buf, 0, 0xFFFFFFFF) // -1
	b := kernel.NewBuilder("signext")
	pin := b.BufferParam("b", true)
	pout := b.BufferParam("out", false)
	v := b.LoadGlobal(b.AddScaled(pin, kernel.Imm(0), 4), 4)
	isNeg := b.SetLT(v, kernel.Imm(0))
	b.StoreGlobal(b.AddScaled(pout, b.GlobalTID(), 4), isNeg, 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, 1, 32, []driver.Arg{driver.BufArg(buf), driver.BufArg(out)}, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(NvidiaConfig(), dev).Run(l); err != nil {
		t.Fatal(err)
	}
	if dev.ReadUint32(out, 0) != 1 {
		t.Fatalf("0xFFFFFFFF should load as -1")
	}
}

// randomStraightLineKernel builds a random (but safe) compute kernel:
// loads from in, a chain of ALU ops, a store to out.
func randomStraightLineKernel(r *rand.Rand, name string) *kernel.Kernel {
	b := kernel.NewBuilder(name)
	pin := b.BufferParam("in", true)
	pout := b.BufferParam("out", false)
	gtid := b.GlobalTID()
	v := b.LoadGlobal(b.AddScaled(pin, gtid, 4), 4)
	for i := 0; i < 3+r.Intn(8); i++ {
		c := kernel.Imm(int64(r.Intn(1000) + 1))
		switch r.Intn(7) {
		case 0:
			v = b.Add(v, c)
		case 1:
			v = b.Sub(v, c)
		case 2:
			v = b.Mul(v, kernel.Imm(int64(r.Intn(7)+1)))
		case 3:
			v = b.Xor(v, c)
		case 4:
			v = b.Min(v, kernel.Imm(int64(r.Intn(1<<20))))
		case 5:
			v = b.Shr(v, kernel.Imm(int64(r.Intn(4))))
		case 6:
			v = b.Max(v, c)
		}
	}
	b.StoreGlobal(b.AddScaled(pout, gtid, 4), v, 4)
	return b.MustBuild()
}

// TestShieldIsFunctionallyTransparent is the core end-to-end property:
// for arbitrary benign kernels, enabling GPUShield never changes results.
func TestShieldIsFunctionallyTransparent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		k := randomStraightLineKernel(r, "rand")
		const n = 256
		run := func(mode driver.Mode) []uint32 {
			dev := driver.NewDevice(55)
			in := dev.Malloc("in", n*4, true)
			out := dev.Malloc("out", n*4, false)
			rr := rand.New(rand.NewSource(int64(trial)))
			for i := 0; i < n; i++ {
				dev.WriteUint32(in, i, uint32(rr.Intn(1<<30)))
			}
			cfg := NvidiaConfig()
			if mode != driver.ModeOff {
				cfg = cfg.WithShield(core.DefaultBCUConfig())
			}
			l, err := dev.PrepareLaunch(k, 2, 128, []driver.Arg{driver.BufArg(in), driver.BufArg(out)}, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			st, err := New(cfg, dev).Run(l)
			if err != nil {
				t.Fatal(err)
			}
			if st.Aborted || len(st.Violations) > 0 {
				t.Fatalf("trial %d: benign kernel flagged: %+v", trial, st)
			}
			res := make([]uint32, n)
			for i := range res {
				res[i] = dev.ReadUint32(out, i)
			}
			return res
		}
		off := run(driver.ModeOff)
		shield := run(driver.ModeShield)
		for i := range off {
			if off[i] != shield[i] {
				t.Fatalf("trial %d: out[%d] differs: %d vs %d", trial, i, off[i], shield[i])
			}
		}
	}
}

// TestBlockTooLargeRejected exercises the launch-capacity check.
func TestBlockTooLargeRejected(t *testing.T) {
	dev := driver.NewDevice(8)
	buf := dev.Malloc("b", 1<<20, false)
	b := kernel.NewBuilder("big")
	p := b.BufferParam("b", false)
	b.StoreGlobal(b.AddScaled(p, b.GlobalTID(), 4), kernel.Imm(1), 4)
	k := b.MustBuild()
	l, err := dev.PrepareLaunch(k, 1, 2048, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(NvidiaConfig(), dev).Run(l); err == nil {
		t.Fatalf("block larger than a core's thread capacity accepted")
	}
}

// TestStatsDerivedMetrics covers the LaunchStats helpers.
func TestStatsDerivedMetrics(t *testing.T) {
	st := &LaunchStats{StartCycle: 100, FinishCycle: 300, WarpInstrs: 400,
		L1DAccesses: 10, L1DHits: 8, Checks: 20, RL1Hits: 15, Skipped: 60, Type3Checks: 20}
	if st.Cycles() != 200 {
		t.Fatalf("cycles %d", st.Cycles())
	}
	if st.IPC() != 2 {
		t.Fatalf("IPC %f", st.IPC())
	}
	if st.L1DHitRate() != 0.8 {
		t.Fatalf("L1D hit rate %f", st.L1DHitRate())
	}
	if st.RL1HitRate() != 0.75 {
		t.Fatalf("RCache hit rate %f", st.RL1HitRate())
	}
	if st.CheckReduction() != 0.8 {
		t.Fatalf("check reduction %f", st.CheckReduction())
	}
	if st.String() == "" {
		t.Fatalf("empty string")
	}
	var empty LaunchStats
	if empty.IPC() != 0 || empty.L1DHitRate() != 1 || empty.RL1HitRate() != 1 || empty.CheckReduction() != 0 {
		t.Fatalf("zero-value metrics wrong")
	}
}

// TestShareModeString covers the mode names.
func TestShareModeString(t *testing.T) {
	if ShareInterCore.String() != "inter-core" || ShareIntraCore.String() != "intra-core" {
		t.Fatalf("share mode strings wrong")
	}
}
