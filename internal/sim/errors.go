package sim

import "errors"

// Typed error classes the simulator returns instead of hanging or panicking,
// so long-lived callers (serving loops, fault campaigns) can classify
// failures and keep going.
var (
	// ErrWatchdog marks a launch aborted by the kernel watchdog: either the
	// cycle budget (Config.MaxCycles) was exhausted — the infinite-loop /
	// stuck-warp case — or the simulator proved no resident warp can ever
	// make progress again (barrier deadlock). The LaunchStats returned
	// alongside it are a partial report up to the abort cycle.
	ErrWatchdog = errors.New("sim: watchdog abort")

	// ErrInvalidConfig marks a GPU configuration that cannot be
	// instantiated (malformed cache/TLB geometry, nonpositive core or warp
	// counts).
	ErrInvalidConfig = errors.New("sim: invalid config")

	// ErrCanceled marks a launch aborted because its context was canceled
	// (Ctrl-C, a deadline, a soak-loop shutdown). Like a watchdog abort, the
	// LaunchStats returned alongside it are a partial report up to the abort
	// cycle; unlike a watchdog abort the run itself was healthy, so it is
	// safe to re-run under a fresh context.
	ErrCanceled = errors.New("sim: run canceled")
)
