package sim

// farFuture is the wake time of a core that provably cannot issue until
// some future event (placement, barrier release) re-arms it.
const farFuture = ^uint64(0)

// wakeHeap is a lazy binary min-heap over per-core wake times: the earliest
// cycle at which each core might issue an instruction. Every core occupies
// exactly one slot, so the structure never grows.
//
// Updates happen on every issue (the hottest path in the simulator), while
// the minimum is only consulted when the whole GPU went idle for a step, so
// the heap is maintained lazily: set/earlier are O(1) writes that mark the
// order dirty, and min restores the heap invariant on demand with a Floyd
// build-heap before peeking the root. That keeps the next-event query at
// O(cores) — independent of the (much larger) resident-warp population the
// scan-based scheduler used to walk.
type wakeHeap struct {
	wake  []uint64 // wake[core] = earliest possible issue cycle
	heap  []int    // core ids, heap-ordered by wake when !dirty
	dirty bool
}

func newWakeHeap(cores int) *wakeHeap {
	h := &wakeHeap{
		wake: make([]uint64, cores),
		heap: make([]int, cores),
	}
	for i := 0; i < cores; i++ {
		h.wake[i] = farFuture
		h.heap[i] = i
	}
	return h
}

// reset parks every core at farFuture. Called at the start of each
// RunConcurrent.
func (h *wakeHeap) reset() {
	for i := range h.wake {
		h.wake[i] = farFuture
	}
	h.dirty = false // all keys equal: any layout is a valid heap
}

// at returns core's current wake time.
func (h *wakeHeap) at(core int) uint64 { return h.wake[core] }

// due appends to dst every core whose wake time has arrived at cycle now,
// in ascending core-id order — which is both the serial scheduler's visit
// order and the parallel scheduler's commit order. In an abort-free cycle
// no event can wake a core mid-step, so the set computed up front equals
// the set the serial loop would visit; abort cycles never reach here (the
// hazard fallback re-runs them serially).
func (h *wakeHeap) due(now uint64, dst []*coreState, cores []*coreState) []*coreState {
	for _, c := range cores {
		if h.wake[c.id] <= now {
			dst = append(dst, c)
		}
	}
	return dst
}

// set moves core's wake time to t.
func (h *wakeHeap) set(core int, t uint64) {
	if h.wake[core] != t {
		h.wake[core] = t
		h.dirty = true
	}
}

// earlier lowers core's wake time to t if t is sooner than its current one.
func (h *wakeHeap) earlier(core int, t uint64) {
	if t < h.wake[core] {
		h.wake[core] = t
		h.dirty = true
	}
}

// min returns the earliest wake time across all cores (farFuture when every
// core is parked).
func (h *wakeHeap) min() uint64 {
	if h.dirty {
		for i := len(h.heap)/2 - 1; i >= 0; i-- {
			h.down(i)
		}
		h.dirty = false
	}
	return h.wake[h.heap[0]]
}

func (h *wakeHeap) less(i, j int) bool { return h.wake[h.heap[i]] < h.wake[h.heap[j]] }

func (h *wakeHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.heap[i], h.heap[smallest] = h.heap[smallest], h.heap[i]
		i = smallest
	}
}
