package sim

import (
	"encoding/binary"
	"math"
	"math/bits"

	"gpushield/internal/core"
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// Warp memory plans (the LSU analogue of superblock lowering, PR 10): the
// shape of a memory instruction — which operand carries the pointer, whether
// the offset is lane-affine, whether the static analyzer proved it safe —
// is constant for a warp's lifetime, so it is lowered once per (warp, pc)
// and recycled across loop iterations. On top of the lowered shape, address
// generation classifies each dynamic access by stride (uniform /
// unit-stride / strided / indirect), which lets memCommit:
//
//   - clear the page-fault check for the whole transaction with one mapped
//     range sweep instead of a per-lane page-table probe;
//   - resolve the bounds check through a per-call-site decrypt memo
//     (core.CheckMemo) so the Feistel network runs once per (buffer,
//     kernel) instead of once per instruction — the software mirror of the
//     paper's RCache locality;
//   - service dense unit-stride loads and stores through one backing-store
//     span instead of 32 scalar accesses.
//
// Equivalence with the reference path is held the same way superblocks hold
// it: nothing timing-visible is memoized. The generated addresses, offsets,
// pointer tag, byte range, and coalesced line sequence are bit-identical to
// memGenRef's by construction (monotonicity and wrap guards force the
// reference loop whenever arithmetic generation would not be provably
// exact), and every BCU counter, RCache access, bubble, and violation fires
// through the same code. GPUSHIELD_NO_MEMPLANS / Config.NoMemPlans forces
// the reference path; the equivalence tests and the fuzz-smoke differential
// leg diff the two.

// Transaction classes assigned by the planned address generator.
const (
	memClassRef      uint8 = iota // reference generator: no plan metadata
	memClassIndirect              // no provable structure
	memClassUniform               // all active lanes hit the same address
	memClassUnit                  // dense unit stride: addr[i+1] = addr[i]+bytes
	memClassStrided               // constant stride, not dense
)

type memPlanKind uint8

const (
	mpRef   memPlanKind = iota // always the reference generator (local space)
	mpParam                    // Method C: uniform tagged base param + explicit offset
	mpReg                      // Method B: a register holds the full tagged address
)

// memPlan is one lowered memory instruction cached on a warp (indexed via
// warp.mpIdx, backing recycled across launches by placeWorkgroup).
type memPlan struct {
	kind   memPlanKind
	hasOff bool // mpReg: an explicit offset operand is present
	skip   bool // launch-constant l.SkipCheck[pc], memoized at lowering
	affine bool // mpParam: offset is a pure affine function of lane
	p0, p1 srcPlan
	pStore srcPlan // store/atomic value operand (Src[2])

	// vc is this call site's decrypt memo for transaction-granularity
	// checking: (kernel, pointer tag) resolve to the same buffer ID for as
	// long as the BCU generation stands (see core.CheckMemo).
	vc core.CheckMemo

	// Affine geometry cache: for mpParam+affine the whole address vector
	// is a warp-lifetime constant per guard mask, so the coalesced
	// geometry is computed once and replayed across loop iterations.
	// geomMask is the mask the cache was built for (0 = empty).
	geomMask uint64
	geom     memGeom
}

// memGeom is one cached address-generation + coalescing result.
type memGeom struct {
	class            uint8
	wrapped          bool
	stride           int64
	nLines           int
	lines            []uint64
	minAddr, maxAddr uint64
	minOfs, maxOfs   int64
}

// memPlanFor returns the warp's lowered memory plan for the current pc,
// lowering it on first visit. Entry backing arrays survive placeWorkgroup's
// reset, so steady-state relowering allocates nothing.
func (c *coreState) memPlanFor(w *warp, in *kernel.Instr) *memPlan {
	if ei := w.mpIdx[w.pc]; ei != 0 {
		return &w.mpEnt[ei-1]
	}
	n := len(w.mpEnt)
	if n < cap(w.mpEnt) {
		w.mpEnt = w.mpEnt[:n+1] // recycle a parked entry's backing
	} else {
		w.mpEnt = append(w.mpEnt, memPlan{})
	}
	e := &w.mpEnt[n]
	glines := e.geom.lines
	*e = memPlan{}
	e.geom.lines = glines
	l := w.wg.run.launch
	e.skip = l.SkipCheck[w.pc]
	switch {
	case in.Space == kernel.SpaceLocal:
		e.kind = mpRef
	case in.Src[0].Kind == kernel.OperandParam:
		e.kind = mpParam
		e.p1 = c.plan(w, in.Src[1])
		e.affine = e.p1.reg < 0
	default:
		e.kind = mpReg
		e.p0 = c.plan(w, in.Src[0])
		e.p1 = c.plan(w, in.Src[1])
		e.hasOff = in.Src[1].Kind != kernel.OperandNone
	}
	if in.Op == kernel.OpSt || in.Op == kernel.OpAtomAdd {
		e.pStore = c.plan(w, in.Src[2])
	}
	w.mpIdx[w.pc] = int32(n + 1)
	return e
}

// laneList returns the dense active-lane list for gmask, rebuilding the
// warp's cache only when the mask diverges from the last memory access's.
func (w *warp) laneList(gmask uint64) []int32 {
	if w.memMask == gmask {
		return w.memLanes
	}
	lns := w.memLanes[:0]
	for lanes := gmask; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		lns = append(lns, int32(lane))
	}
	w.memMask, w.memLanes = gmask, lns
	return lns
}

// memGenFast is the planned address generator: it fills prep exactly as
// memGenRef would — same addresses, offsets, pointer tag, byte range, and
// coalesced line sequence — while classifying the access so memCommit can
// batch the page check, the bounds check, and the functional access. It
// returns false when the instruction has no plannable shape (local space),
// sending the caller to the reference generator.
func (c *coreState) memGenFast(w *warp, in *kernel.Instr, gmask uint64, prep *memPrep) bool {
	e := c.memPlanFor(w, in)
	if e.kind == mpRef {
		return false
	}
	l := w.wg.run.launch
	lanes := w.laneList(gmask)
	prep.plan = e
	prep.lanes = lanes
	bytes := uint64(in.Bytes)

	if e.kind == mpParam {
		base := l.Args[in.Src[0].Param]
		prep.ptr = base
		if e.affine && e.geomMask == gmask {
			// Replay the cached geometry; addrs/offs still refill (commit
			// reads them for the ablation loop, the census, and fallbacks).
			ab := core.Addr(base)
			b0, s := e.p1.base, e.p1.slope
			for _, ln := range lanes {
				off := b0 + s*int64(ln)
				prep.offs[ln] = off
				prep.addrs[ln] = ab + uint64(off)
			}
			g := &e.geom
			prep.nLines = g.nLines
			copy(prep.lines[:g.nLines], g.lines)
			prep.minAddr, prep.maxAddr = g.minAddr, g.maxAddr
			prep.minOfs, prep.maxOfs = g.minOfs, g.maxOfs
			prep.class, prep.stride, prep.wrapped = g.class, g.stride, g.wrapped
			return true
		}
		c.memScanParam(w, e, l, gmask, prep, bytes)
		if e.affine {
			g := &e.geom
			if cap(g.lines) < len(prep.lines) {
				g.lines = make([]uint64, 0, len(prep.lines))
			}
			g.lines = append(g.lines[:0], prep.lines[:prep.nLines]...)
			g.nLines = prep.nLines
			g.minAddr, g.maxAddr = prep.minAddr, prep.maxAddr
			g.minOfs, g.maxOfs = prep.minOfs, prep.maxOfs
			g.class, g.stride, g.wrapped = prep.class, prep.stride, prep.wrapped
			e.geomMask = gmask
		}
		return true
	}
	c.memScanReg(w, e, gmask, prep, bytes)
	return true
}

// memScanParam generates addresses for a Method-C access (uniform tagged
// base + explicit per-lane offset), tracking the byte range and the stride
// evidence the classifier needs. The arithmetic per lane is identical to
// memGenRef's Method-C case.
func (c *coreState) memScanParam(w *warp, e *memPlan, l *driver.Launch, gmask uint64, prep *memPrep, bytes uint64) {
	ab := core.Addr(prep.ptr)
	lanes := prep.lanes
	var (
		minA     = ^uint64(0)
		maxA     uint64
		minO     = int64(math.MaxInt64)
		maxO     = int64(math.MinInt64)
		mono     = true
		strideOK = true
		stride   int64
		wrapped  bool
		prev     uint64
	)
	for i, ln := range lanes {
		off := e.p1.eval(w, int(ln))
		a := ab + uint64(off)
		prep.addrs[ln] = a
		prep.offs[ln] = off
		if a < minA {
			minA = a
		}
		hi := a + bytes - 1
		if hi > maxA {
			maxA = hi
		}
		if hi < a {
			wrapped = true
		}
		if off < minO {
			minO = off
		}
		if oh := off + int64(bytes) - 1; oh > maxO {
			maxO = oh
		}
		if i == 1 {
			if a < prev {
				mono = false
			} else {
				stride = int64(a - prev)
			}
		} else if i > 1 {
			if a < prev {
				mono = false
			} else if int64(a-prev) != stride {
				strideOK = false
			}
		}
		prev = a
	}
	prep.minAddr, prep.maxAddr = minA, maxA
	prep.minOfs, prep.maxOfs = minO, maxO
	c.classifyAndCoalesce(l, gmask, prep, bytes, mono, strideOK, stride, wrapped)
}

// memScanReg generates addresses for a Method-B access (a register carries
// the full, possibly tagged, address). The pointer tag comes from the first
// active lane's untruncated value, exactly as in memGenRef; tag-stripped
// addresses fit in 48 bits, so per-lane spans can never wrap uint64.
func (c *coreState) memScanReg(w *warp, e *memPlan, gmask uint64, prep *memPrep, bytes uint64) {
	lanes := prep.lanes
	hasOff := e.hasOff
	var (
		minA     = ^uint64(0)
		maxA     uint64
		mono     = true
		strideOK = true
		stride   int64
		prev     uint64
	)
	for i, ln := range lanes {
		v := uint64(e.p0.eval(w, int(ln)))
		if hasOff {
			v += uint64(e.p1.eval(w, int(ln)))
		}
		if i == 0 {
			prep.ptr = v
		}
		a := core.Addr(v)
		prep.addrs[ln] = a
		prep.offs[ln] = 0
		if a < minA {
			minA = a
		}
		if hi := a + bytes - 1; hi > maxA {
			maxA = hi
		}
		if i == 1 {
			if a < prev {
				mono = false
			} else {
				stride = int64(a - prev)
			}
		} else if i > 1 {
			if a < prev {
				mono = false
			} else if int64(a-prev) != stride {
				strideOK = false
			}
		}
		prev = a
	}
	prep.minAddr, prep.maxAddr = minA, maxA
	prep.minOfs, prep.maxOfs = 0, int64(bytes)-1
	c.classifyAndCoalesce(w.wg.run.launch, gmask, prep, bytes, mono, strideOK, stride, false)
}

// classifyAndCoalesce assigns the transaction class from the scan evidence
// and produces the coalesced line sequence — arithmetically when the shape
// makes that provably exact, through the reference ACU loop otherwise. The
// emitted lines are identical to memGenRef's in content and order (order
// matters: memAccess mutates cache, TLB, and DRAM state per line).
func (c *coreState) classifyAndCoalesce(l *driver.Launch, gmask uint64, prep *memPrep, bytes uint64, mono, strideOK bool, stride int64, wrapped bool) {
	lineBytes := uint64(c.gpu.cfg.L1D.LineBytes)
	lanes := prep.lanes
	class := memClassIndirect
	if mono && strideOK {
		switch {
		case len(lanes) == 1 || stride == 0:
			class = memClassUniform
		case stride == int64(bytes):
			class = memClassUnit
		case stride > 0:
			class = memClassStrided
		}
	}
	prep.class, prep.stride, prep.wrapped = class, stride, wrapped

	// Arithmetic line generation is exact only for monotone, wrap-free
	// address vectors under coalescing; anything else — including a line
	// walk that could step past the top of the address space — replays the
	// reference loop over the already-generated addresses.
	if l.NoCoalesce || class == memClassIndirect || wrapped ||
		prep.maxAddr >= ^uint64(0)-lineBytes {
		prep.nLines = c.coalesceRef(l, gmask, prep, bytes)
		return
	}
	lineMask := ^(lineBytes - 1)
	switch class {
	case memClassUniform:
		// Every lane repeats the same span: lane 0's line walk, dedup-free.
		a := prep.addrs[lanes[0]]
		nl := 0
		for la := a & lineMask; la <= (a+bytes-1)&lineMask && nl < len(prep.lines); la += lineBytes {
			prep.lines[nl] = la
			nl++
		}
		prep.nLines = nl
	case memClassUnit:
		// The warp touches every byte of [addr0, maxAddr], so every line in
		// between appears exactly once, ascending.
		last := prep.maxAddr & lineMask
		nl := 0
		for la := prep.addrs[lanes[0]] & lineMask; nl < len(prep.lines); la += lineBytes {
			prep.lines[nl] = la
			nl++
			if la == last {
				break
			}
		}
		prep.nLines = nl
	default: // memClassStrided
		// Monotone addresses: a duplicate line can only repeat the one just
		// emitted, so dedup-against-last reproduces the full-array dedup.
		const noLine = 1 // not line-aligned: never equals a real line address
		lastEmit := uint64(noLine)
		nl := 0
		for _, ln := range lanes {
			a := prep.addrs[ln]
			for la := a & lineMask; la <= (a+bytes-1)&lineMask; la += lineBytes {
				if la != lastEmit && nl < len(prep.lines) {
					prep.lines[nl] = la
					lastEmit = la
					nl++
				}
			}
		}
		prep.nLines = nl
	}
}

// coalesceRef is the reference ACU loop (see memGenRef) run over
// already-generated addresses: per active lane ascending, per touched line,
// full-array dedup unless NoCoalesce, capped at len(prep.lines).
func (c *coreState) coalesceRef(l *driver.Launch, gmask uint64, prep *memPrep, bytes uint64) int {
	lineMask := ^uint64(int64(c.gpu.cfg.L1D.LineBytes - 1))
	lines := &prep.lines
	nLines := 0
	for lanes := gmask; lanes != 0; {
		lane := bits.TrailingZeros64(lanes)
		lanes &^= 1 << uint(lane)
		a := prep.addrs[lane]
		for la := a & lineMask; la <= (a+bytes-1)&lineMask; la += uint64(c.gpu.cfg.L1D.LineBytes) {
			found := false
			if !l.NoCoalesce {
				for i := 0; i < nLines; i++ {
					if lines[i] == la {
						found = true
						break
					}
				}
			}
			if !found && nLines < len(lines) {
				lines[nLines] = la
				nLines++
			}
		}
	}
	return nLines
}

// rangeMapped reports whether the transaction's whole byte range is provably
// on mapped pages: a plan-classified, wrap-free address vector whose span
// covers few enough pages to sweep. Exact on success — with no per-lane
// wrap, every lane's interval lies inside [minAddr, maxAddr]. A false
// return means "take the per-lane walk", not "unmapped".
func (c *coreState) rangeMapped(prep *memPrep) bool {
	if prep.class == memClassRef || prep.wrapped {
		return false
	}
	lo, hi := prep.minAddr, prep.maxAddr
	if hi < lo || hi/driver.PageBytes-lo/driver.PageBytes >= 64 {
		return false
	}
	return c.gpu.dev.MappedRange(lo, hi)
}

// batchLoad services a dense unit-stride load whose bytes land in one
// backing chunk through a single span: lane i reads span[i*bytes:]. A false
// return (chunk straddle, unsupported width) sends the caller to the
// per-lane path. The same bytes are read with the same widening rules as
// loadValue, so the register file ends up bit-identical.
func (c *coreState) batchLoad(w *warp, in *kernel.Instr, prep *memPrep) bool {
	lanes := prep.lanes
	sp := c.gpu.dev.Mem.Span(prep.addrs[lanes[0]], len(lanes)*in.Bytes)
	if sp == nil {
		return false
	}
	dst, nregs := in.Dst, w.nregs
	flat := w.flat
	switch {
	case in.F32 && in.Bytes == 4:
		for i, ln := range lanes {
			raw := binary.LittleEndian.Uint32(sp[i*4:])
			flat[int(ln)*nregs+dst] = kernel.F2B(float64(math.Float32frombits(raw)))
		}
	case in.Bytes == 8:
		for i, ln := range lanes {
			flat[int(ln)*nregs+dst] = int64(binary.LittleEndian.Uint64(sp[i*8:]))
		}
	case in.Bytes == 4:
		for i, ln := range lanes {
			flat[int(ln)*nregs+dst] = int64(int32(binary.LittleEndian.Uint32(sp[i*4:])))
		}
	case in.Bytes == 2:
		for i, ln := range lanes {
			flat[int(ln)*nregs+dst] = int64(binary.LittleEndian.Uint16(sp[i*2:]))
		}
	case in.Bytes == 1:
		for i, ln := range lanes {
			flat[int(ln)*nregs+dst] = int64(sp[i])
		}
	default:
		return false
	}
	return true
}

// batchStore is batchLoad's store dual: lane values narrow into one span,
// byte-identical to per-lane storeValue calls.
func (c *coreState) batchStore(w *warp, in *kernel.Instr, prep *memPrep) bool {
	lanes := prep.lanes
	sp := c.gpu.dev.Mem.Span(prep.addrs[lanes[0]], len(lanes)*in.Bytes)
	if sp == nil {
		return false
	}
	p2 := prep.plan.pStore
	switch {
	case in.F32 && in.Bytes == 4:
		for i, ln := range lanes {
			raw := math.Float32bits(float32(kernel.B2F(p2.eval(w, int(ln)))))
			binary.LittleEndian.PutUint32(sp[i*4:], raw)
		}
	case in.Bytes == 8:
		for i, ln := range lanes {
			binary.LittleEndian.PutUint64(sp[i*8:], uint64(p2.eval(w, int(ln))))
		}
	case in.Bytes == 4:
		for i, ln := range lanes {
			binary.LittleEndian.PutUint32(sp[i*4:], uint32(p2.eval(w, int(ln))))
		}
	case in.Bytes == 2:
		for i, ln := range lanes {
			binary.LittleEndian.PutUint16(sp[i*2:], uint16(p2.eval(w, int(ln))))
		}
	case in.Bytes == 1:
		for i, ln := range lanes {
			sp[i] = byte(p2.eval(w, int(ln)))
		}
	default:
		return false
	}
	return true
}
