package sim

import (
	"errors"
	"strings"
	"testing"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// buildInfiniteLoop returns a kernel whose every thread spins forever: the
// loop condition is a constant true, so no lane ever retires.
func buildInfiniteLoop(t testing.TB) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("spin")
	acc := b.Mov(kernel.Imm(0))
	b.WhileAny(func() kernel.Operand {
		return b.SetLT(kernel.Imm(0), kernel.Imm(1)) // always true
	}, func() {
		b.MovTo(acc, b.Add(acc, kernel.Imm(1)))
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return k
}

// buildBarrierDivergence returns a kernel where the first half of each
// workgroup parks at a barrier while the second half spins forever, so the
// barrier can never release: a barrier-divergence deadlock.
func buildBarrierDivergence(t testing.TB, half int64) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("bar-deadlock")
	tid := b.TID()
	p := b.SetLT(tid, kernel.Imm(half))
	acc := b.Mov(kernel.Imm(0))
	b.IfElse(p, func() {
		b.Barrier()
	}, func() {
		b.WhileAny(func() kernel.Operand {
			return b.SetLT(kernel.Imm(0), kernel.Imm(1))
		}, func() {
			b.MovTo(acc, b.Add(acc, kernel.Imm(1)))
		})
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return k
}

func presetConfigs() map[string]Config {
	return map[string]Config{"nvidia": NvidiaConfig(), "intel": IntelConfig()}
}

func prepare(t testing.TB, dev *driver.Device, k *kernel.Kernel, grid, block int) *driver.Launch {
	t.Helper()
	l, err := dev.PrepareLaunch(k, grid, block, nil, driver.ModeOff, nil)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return l
}

func TestWatchdogAbortsInfiniteLoop(t *testing.T) {
	for name, cfg := range presetConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 20_000
			dev := driver.NewDevice(1)
			gpu := New(cfg, dev)
			l := prepare(t, dev, buildInfiniteLoop(t), 2, 2*cfg.WarpWidth)

			rep, err := gpu.Run(l)
			if !errors.Is(err, ErrWatchdog) {
				t.Fatalf("want ErrWatchdog, got %v", err)
			}
			if rep == nil {
				t.Fatalf("watchdog abort must still return a partial report")
			}
			if !rep.Aborted || !strings.Contains(rep.AbortMsg, "watchdog") {
				t.Fatalf("partial report not marked aborted: %+v", rep)
			}
			if rep.Cycles() < cfg.MaxCycles {
				t.Fatalf("aborted at %d cycles, before the %d budget", rep.Cycles(), cfg.MaxCycles)
			}
			if rep.WarpInstrs == 0 {
				t.Fatalf("partial report should include progress up to the abort")
			}
		})
	}
}

func TestWatchdogAbortsBarrierDeadlock(t *testing.T) {
	for name, cfg := range presetConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.MaxCycles = 20_000
			dev := driver.NewDevice(1)
			gpu := New(cfg, dev)
			// Two warps per workgroup; the first parks at the barrier, the
			// second spins, so the barrier never releases.
			l := prepare(t, dev, buildBarrierDivergence(t, int64(cfg.WarpWidth)), 1, 2*cfg.WarpWidth)

			rep, err := gpu.Run(l)
			if !errors.Is(err, ErrWatchdog) {
				t.Fatalf("want ErrWatchdog, got %v", err)
			}
			if rep == nil || !rep.Aborted {
				t.Fatalf("want aborted partial report, got %+v", rep)
			}
		})
	}
}

func TestWatchdogMultiKernelKeepsFinishedReport(t *testing.T) {
	cfg := NvidiaConfig()
	cfg.MaxCycles = 50_000
	dev := driver.NewDevice(1)
	gpu := New(cfg, dev)

	// A quick kernel that finishes immediately alongside a hung one.
	b := kernel.NewBuilder("quick")
	b.Mov(kernel.Imm(1))
	quick, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	lq := prepare(t, dev, quick, 1, 32)
	ls := prepare(t, dev, buildInfiniteLoop(t), 1, 32)

	for _, mode := range []ShareMode{ShareInterCore, ShareIntraCore} {
		t.Run(mode.String(), func(t *testing.T) {
			reps, err := gpu.RunConcurrent([]*driver.Launch{lq, ls}, mode)
			if !errors.Is(err, ErrWatchdog) {
				t.Fatalf("want ErrWatchdog, got %v", err)
			}
			if len(reps) != 2 {
				t.Fatalf("want 2 reports, got %d", len(reps))
			}
			if reps[0].Aborted {
				t.Fatalf("finished kernel must keep its clean report: %+v", reps[0])
			}
			if !reps[1].Aborted {
				t.Fatalf("hung kernel must be marked aborted")
			}
		})
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	// MaxCycles=0 must not abort a long-but-finite kernel.
	cfg := NvidiaConfig()
	dev := driver.NewDevice(1)
	gpu := New(cfg, dev)

	b := kernel.NewBuilder("counted")
	acc := b.Mov(kernel.Imm(0))
	b.ForRange(kernel.Imm(0), kernel.Imm(500), kernel.Imm(1), func(kernel.Operand) {
		b.MovTo(acc, b.Add(acc, kernel.Imm(1)))
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := gpu.Run(prepare(t, dev, k, 1, 32))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if rep.Aborted {
		t.Fatalf("finite kernel aborted: %s", rep.AbortMsg)
	}
}

func TestRunConcurrentRejectsInvalidLaunches(t *testing.T) {
	cfg := NvidiaConfig()
	dev := driver.NewDevice(1)
	gpu := New(cfg, dev)

	if _, err := gpu.RunConcurrent(nil, ShareIntraCore); !errors.Is(err, driver.ErrInvalidLaunch) {
		t.Fatalf("empty launch set: want ErrInvalidLaunch, got %v", err)
	}
	if _, err := gpu.RunConcurrent([]*driver.Launch{nil}, ShareIntraCore); !errors.Is(err, driver.ErrInvalidLaunch) {
		t.Fatalf("nil launch: want ErrInvalidLaunch, got %v", err)
	}
	l := prepare(t, dev, buildInfiniteLoop(t), 1, 32)
	l.Block = cfg.MaxThreadsPerCore + 1
	if _, err := gpu.RunConcurrent([]*driver.Launch{l}, ShareIntraCore); !errors.Is(err, driver.ErrInvalidLaunch) {
		t.Fatalf("oversized block: want ErrInvalidLaunch, got %v", err)
	}
}

func TestNewGPURejectsInvalidConfig(t *testing.T) {
	bad := NvidiaConfig()
	bad.Cores = 0
	if _, err := NewGPU(bad, driver.NewDevice(1)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig, got %v", err)
	}
	bad = NvidiaConfig()
	bad.L1D.LineBytes = 100 // not a power of two
	if _, err := NewGPU(bad, driver.NewDevice(1)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("want ErrInvalidConfig for cache geometry, got %v", err)
	}
}
