package sim

// Version identifies the simulator's observable-semantics revision: two
// builds with the same Version produce bit-identical LaunchStats for the
// same launch. It is part of the content-addressed run hash
// (internal/resultstore), so bumping it invalidates every stored result and
// forces a clean re-simulation — which is exactly what must happen when the
// timing model, the stats accounting, or the instruction semantics change.
//
// Bump this when a change alters any LaunchStats field for any workload
// (golden tests re-recorded is the usual tell). Pure performance work that
// keeps stats byte-identical — PR 3/5/8 style — must NOT bump it, so stored
// sweeps stay warm across optimization PRs.
const Version = 8
