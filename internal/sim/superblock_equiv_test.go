package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// Superblock edge-case equivalence (PR 8 tentpole): each scenario below is
// executed twice per core-parallel width — once on the superblock fast path
// and once with Config.NoSuperblocks forcing reference single-stepping —
// and the full LaunchStats reports (plus output buffer bytes, where the
// kernel writes any) must be byte-identical. The scenarios target exactly
// the places where the replay-issue construction could plausibly crack:
// branching into the middle of a pre-decoded run, the watchdog or a context
// cancellation landing while replays of a block are still owed, and a
// divergence reconvergence point sitting on a block boundary.

var sbEquivWidths = []int{1, 2, 4}

// sbEquivRun executes one launch of k and returns its report, the output
// buffer contents, and the error.
func sbEquivRun(t *testing.T, k *kernel.Kernel, grid, block int, noSB bool,
	width int, maxCycles uint64, cancelAt uint64) (*LaunchStats, []byte, error) {
	t.Helper()
	dev := driver.NewDevice(1)
	const n = 4096
	buf := dev.Malloc("p", n*4, false)
	cfg := NvidiaConfig()
	cfg.NoSuperblocks = noSB
	cfg.CoreParallel = width
	cfg.MaxCycles = maxCycles
	l, err := dev.PrepareLaunch(k, grid, block, []driver.Arg{driver.BufArg(buf)}, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	gpu := New(cfg, dev)
	ctx := context.Background()
	if cancelAt > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		gpu.SetCycleHook(func(now uint64) {
			if now >= cancelAt {
				cancel()
			}
		})
	}
	st, rerr := gpu.RunCtx(ctx, l)
	return st, dev.Mem.ReadBytes(buf.Base, n*4), rerr
}

// sbEquivCompare runs the scenario on both execution paths at every width
// and fails on any divergence in stats, memory, or error identity.
func sbEquivCompare(t *testing.T, k *kernel.Kernel, grid, block int,
	maxCycles, cancelAt uint64, wantErr error) {
	t.Helper()
	for _, w := range sbEquivWidths {
		t.Run(fmt.Sprintf("width=%d", w), func(t *testing.T) {
			ref, refMem, refErr := sbEquivRun(t, k, grid, block, true, w, maxCycles, cancelAt)
			got, gotMem, gotErr := sbEquivRun(t, k, grid, block, false, w, maxCycles, cancelAt)
			if wantErr != nil {
				if !errors.Is(refErr, wantErr) || !errors.Is(gotErr, wantErr) {
					t.Fatalf("want %v on both paths, got reference=%v superblock=%v", wantErr, refErr, gotErr)
				}
			} else if refErr != nil || gotErr != nil {
				t.Fatalf("unexpected error: reference=%v superblock=%v", refErr, gotErr)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("stats diverged from single-step reference:\n got: %+v\nwant: %+v", got, ref)
			}
			if !reflect.DeepEqual(gotMem, refMem) {
				t.Error("output buffer diverged from single-step reference")
			}
		})
	}
}

// TestSuperblockEquivBranchIntoBlock jumps into the middle of a pre-decoded
// ALU run: the first loop iteration falls through and enters the 8-long run
// at its head, the second branches straight to a label four instructions in.
// The suffix-length table must make the mid-run entry a shorter block, not a
// misread of the full one.
func TestSuperblockEquivBranchIntoBlock(t *testing.T) {
	kb := kernel.NewBuilder("sb_midblock")
	p := kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	acc := kb.Mov(gtid)
	kb.ForRange(kernel.Imm(0), kernel.Imm(2), kernel.Imm(1), func(i kernel.Operand) {
		c := kb.SetGT(i, kernel.Imm(0))
		kb.Branch(kernel.OpBraAll, c, false, "mid") // second pass: enter mid-run
		kb.MovTo(acc, kb.Add(acc, kernel.Imm(11)))
		kb.MovTo(acc, kb.Mul(acc, kernel.Imm(3)))
		kb.Label("mid")
		kb.MovTo(acc, kb.Add(acc, kernel.Imm(7)))
		kb.MovTo(acc, kb.Xor(acc, gtid))
	})
	kb.StoreGlobal(kb.AddScaled(p, kb.And(gtid, kernel.Imm(1023)), 4), acc, 4)
	sbEquivCompare(t, kb.MustBuild(), 4, 128, 0, 0, nil)
}

// TestSuperblockEquivWatchdogMidBlock aborts a spinning kernel made of long
// ALU runs with a cycle budget chosen so the abort lands while block replays
// are still owed. The partial report — WarpInstrs counted per replay issue,
// abort cycle, everything — must match single-stepping exactly. Two budgets
// shift the cut point relative to block boundaries.
func TestSuperblockEquivWatchdogMidBlock(t *testing.T) {
	kb := kernel.NewBuilder("sb_watchdog")
	kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	acc := kb.Mov(gtid)
	kb.WhileAny(func() kernel.Operand { return kb.SetGE(acc, kernel.Imm(-1)) }, func() {
		for j := 0; j < 6; j++ {
			kb.MovTo(acc, kb.Add(acc, kernel.Imm(int64(j+1))))
		}
	})
	k := kb.MustBuild()
	for _, budget := range []uint64{501, 1013} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			sbEquivCompare(t, k, 2, 64, budget, 0, ErrWatchdog)
		})
	}
}

// TestSuperblockEquivCancelMidBlock cancels the context at a fixed cycle via
// the cycle hook; the poll fires on the same scheduling step in both arms,
// typically while superblock replays are in flight, and the aborted partial
// reports must agree byte for byte.
func TestSuperblockEquivCancelMidBlock(t *testing.T) {
	kb := kernel.NewBuilder("sb_cancel")
	kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	acc := kb.Mov(gtid)
	kb.WhileAny(func() kernel.Operand { return kb.SetGE(acc, kernel.Imm(-1)) }, func() {
		for j := 0; j < 5; j++ {
			kb.MovTo(acc, kb.Add(acc, kernel.Imm(int64(2*j+1))))
		}
	})
	sbEquivCompare(t, kb.MustBuild(), 2, 64, 0, 1500, ErrCanceled)
}

// TestSuperblockEquivReconvergeAtBoundary puts a divergent If directly
// against a straight ALU run: the reconvergence target is the run's first
// instruction, so the mask widens exactly at the block boundary and the
// pre-decode must not let a run flow across it.
func TestSuperblockEquivReconvergeAtBoundary(t *testing.T) {
	kb := kernel.NewBuilder("sb_reconv")
	p := kb.BufferParam("p", false)
	gtid := kb.GlobalTID()
	lane := kb.Mov(kb.LaneID())
	acc := kb.Mov(gtid)
	kb.ForRange(kernel.Imm(0), kernel.Imm(4), kernel.Imm(1), func(i kernel.Operand) {
		c := kb.SetLT(lane, kernel.Imm(16))
		kb.If(c, func() { // half the warp diverges
			kb.MovTo(acc, kb.Add(acc, kernel.Imm(5)))
			kb.MovTo(acc, kb.Mul(acc, kernel.Imm(3)))
		})
		// Reconvergence point: the run below starts exactly here.
		kb.MovTo(acc, kb.Add(acc, kernel.Imm(1)))
		kb.MovTo(acc, kb.Xor(acc, lane))
		kb.MovTo(acc, kb.Add(acc, i))
	})
	kb.StoreGlobal(kb.AddScaled(p, kb.And(gtid, kernel.Imm(1023)), 4), acc, 4)
	sbEquivCompare(t, kb.MustBuild(), 4, 128, 0, 0, nil)
}
