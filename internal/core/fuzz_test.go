package core

import "testing"

// FuzzFeistelRoundTrip fuzzes the ID cipher: for any key and in-domain ID,
// decryption must invert encryption and the ciphertext must stay in the
// 14-bit domain.
func FuzzFeistelRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint64(0))
	f.Add(uint16(16383), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint16(1234), uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, id uint16, key uint64) {
		id &= 0x3FFF
		ct := EncryptID(id, key)
		if ct >= NumIDs {
			t.Fatalf("ciphertext %d escapes the 14-bit domain", ct)
		}
		if got := DecryptID(ct, key); got != id {
			t.Fatalf("decrypt(encrypt(%d)) = %d under key %#x", id, got, key)
		}
	})
}

// FuzzPointerFormat fuzzes the tagged-pointer encoding round trip.
func FuzzPointerFormat(f *testing.F) {
	f.Add(uint8(1), uint16(42), uint64(0x2000_0000_0000))
	f.Fuzz(func(t *testing.T, class uint8, payload uint16, addr uint64) {
		c := PtrClass(class % 3)
		pl := payload & uint16(PayloadMask)
		a := addr & AddrMask
		p := MakePointer(c, pl, a)
		if Class(p) != c || Payload(p) != pl || Addr(p) != a {
			t.Fatalf("round trip failed for class=%d payload=%d addr=%#x", c, pl, a)
		}
	})
}

// FuzzBoundsCodec fuzzes the in-memory RBT entry encoding.
func FuzzBoundsCodec(f *testing.F) {
	f.Add(uint64(0x1000), uint32(4096), true)
	f.Fuzz(func(t *testing.T, base uint64, size uint32, ro bool) {
		b := NewBounds(base&AddrMask, size, ro)
		var buf [BoundsEntryBytes]byte
		b.EncodeTo(buf[:])
		d := DecodeBounds(buf[:])
		if d != b {
			t.Fatalf("codec round trip: %+v != %+v", d, b)
		}
	})
}

// FuzzBoundsBitFlip fuzzes the fault-injection mutator: Flip must be a
// deterministic involution (flipping the same bits twice restores the entry)
// and survive the entry codec.
func FuzzBoundsBitFlip(f *testing.F) {
	f.Add(uint64(0x1000), uint32(4096), true, uint64(1)<<63, uint32(1))
	f.Add(uint64(0), uint32(0), false, uint64(0), uint32(0))
	f.Fuzz(func(t *testing.T, base uint64, size uint32, ro bool, baseMask uint64, sizeMask uint32) {
		b := NewBounds(base&AddrMask, size, ro)
		x := b.Flip(baseMask, sizeMask)
		if x != b.Flip(baseMask, sizeMask) {
			t.Fatalf("Flip is not deterministic")
		}
		if (baseMask != 0 || sizeMask != 0) && x == b {
			t.Fatalf("nonzero masks %#x/%#x left the entry unchanged", baseMask, sizeMask)
		}
		if got := x.Flip(baseMask, sizeMask); got != b {
			t.Fatalf("Flip is not an involution: %+v != %+v", got, b)
		}
		var buf [BoundsEntryBytes]byte
		x.EncodeTo(buf[:])
		if DecodeBounds(buf[:]) != x {
			t.Fatalf("flipped entry does not survive the codec")
		}
	})
}

// FuzzFeistelKeyPerturbation fuzzes the cipher under key corruption: for any
// key and any perturbation of it, Encrypt/Decrypt must remain a bijection on
// the 14-bit domain, and decrypting under a perturbed key must stay
// in-domain (a corrupted key register misroutes RBT lookups but can never
// escape the table).
func FuzzFeistelKeyPerturbation(f *testing.F) {
	f.Add(uint16(42), uint64(0xDEADBEEF), uint64(1)<<17)
	f.Add(uint16(0x3FFF), uint64(0), uint64(0xFFFFFFFFFFFFFFFF))
	f.Fuzz(func(t *testing.T, id uint16, key uint64, mask uint64) {
		id &= 0x3FFF
		bad := key ^ mask
		ct := EncryptID(id, bad)
		if ct >= NumIDs {
			t.Fatalf("ciphertext %d escapes the domain under perturbed key %#x", ct, bad)
		}
		if got := DecryptID(ct, bad); got != id {
			t.Fatalf("perturbed key %#x is not a bijection: decrypt(encrypt(%d)) = %d", bad, id, got)
		}
		// Cross-key decryption (the fault-model path: pointer encrypted with
		// the good key, decrypted with the corrupted one) must stay in-domain.
		if got := DecryptID(EncryptID(id, key), bad); got >= NumIDs {
			t.Fatalf("cross-key decrypt escapes the domain: %d", got)
		}
	})
}
