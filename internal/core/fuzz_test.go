package core

import "testing"

// FuzzFeistelRoundTrip fuzzes the ID cipher: for any key and in-domain ID,
// decryption must invert encryption and the ciphertext must stay in the
// 14-bit domain.
func FuzzFeistelRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint64(0))
	f.Add(uint16(16383), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint16(1234), uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, id uint16, key uint64) {
		id &= 0x3FFF
		ct := EncryptID(id, key)
		if ct >= NumIDs {
			t.Fatalf("ciphertext %d escapes the 14-bit domain", ct)
		}
		if got := DecryptID(ct, key); got != id {
			t.Fatalf("decrypt(encrypt(%d)) = %d under key %#x", id, got, key)
		}
	})
}

// FuzzPointerFormat fuzzes the tagged-pointer encoding round trip.
func FuzzPointerFormat(f *testing.F) {
	f.Add(uint8(1), uint16(42), uint64(0x2000_0000_0000))
	f.Fuzz(func(t *testing.T, class uint8, payload uint16, addr uint64) {
		c := PtrClass(class % 3)
		pl := payload & uint16(PayloadMask)
		a := addr & AddrMask
		p := MakePointer(c, pl, a)
		if Class(p) != c || Payload(p) != pl || Addr(p) != a {
			t.Fatalf("round trip failed for class=%d payload=%d addr=%#x", c, pl, a)
		}
	})
}

// FuzzBoundsCodec fuzzes the in-memory RBT entry encoding.
func FuzzBoundsCodec(f *testing.F) {
	f.Add(uint64(0x1000), uint32(4096), true)
	f.Fuzz(func(t *testing.T, base uint64, size uint32, ro bool) {
		b := NewBounds(base&AddrMask, size, ro)
		var buf [BoundsEntryBytes]byte
		b.EncodeTo(buf[:])
		d := DecodeBounds(buf[:])
		if d != b {
			t.Fatalf("codec round trip: %+v != %+v", d, b)
		}
	})
}
