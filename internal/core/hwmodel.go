package core

import "fmt"

// Hardware overhead model (Table 3). The paper synthesizes the BCU's
// comparator logic (Synopsys DC, Verilog) and generates its SRAM arrays
// with OpenRAM, both in 45 nm FreePDK at 1 GHz. Neither tool exists here,
// so this analytic model is anchored to the published per-structure
// figures: each structure's area and power scale linearly with its SRAM
// bytes from the Table 3 anchor points, which makes the default
// configuration reproduce Table 3 exactly while remaining usable for
// RCache-size ablations.

// Bit widths of one RCache record (§5.5): 14-bit ID tag, 48-bit base
// address, 32-bit size, 1-bit read-only, 12-bit kernel ID.
const (
	idTagBits    = 14
	baseAddrBits = 48
	sizeBits     = 32
	readOnlyBits = 1
	kernelIDBits = 12
	l1EntryBits  = idTagBits + baseAddrBits + sizeBits + readOnlyBits + kernelIDBits
	l2TagBits    = idTagBits
	l2DataBits   = baseAddrBits + sizeBits + readOnlyBits + kernelIDBits
)

// HWStructure is the overhead estimate for one hardware structure.
type HWStructure struct {
	Name      string
	Entries   int
	SRAMBytes float64
	AreaMM2   float64
	LeakageUW float64
	DynamicMW float64
}

// HWReport is the per-core overhead breakdown plus totals (Table 3).
type HWReport struct {
	Structures []HWStructure
	TotalBytes float64
	TotalArea  float64
	TotalLeak  float64
	TotalDyn   float64
}

// anchor holds the published Table 3 figures used to calibrate the linear
// model.
type anchor struct {
	bytes float64
	area  float64
	leak  float64
	dyn   float64
}

var (
	anchorComparators = anchor{bytes: 0, area: 0.0064, leak: 17.51, dyn: 20.41}
	anchorL1          = anchor{bytes: 53.5, area: 0.0060, leak: 26.40, dyn: 22.93}
	anchorL2Tag       = anchor{bytes: 112, area: 0.0166, leak: 256.71, dyn: 55.39}
	anchorL2Data      = anchor{bytes: 744, area: 0.0568, leak: 499.13, dyn: 104.63}
)

func scale(a anchor, bytes float64) (area, leak, dyn float64) {
	if a.bytes == 0 {
		return a.area, a.leak, a.dyn
	}
	f := bytes / a.bytes
	return a.area * f, a.leak * f, a.dyn * f
}

// EstimateHW computes the per-core hardware overhead of a BCU
// configuration. With the default configuration (4-entry L1, 64-entry L2)
// it reproduces Table 3.
func EstimateHW(cfg BCUConfig) HWReport {
	if cfg.L1Entries == 0 {
		cfg = DefaultBCUConfig()
	}
	l1Bytes := float64(cfg.L1Entries) * float64(l1EntryBits) / 8
	l2TagBytes := float64(cfg.L2Entries) * float64(l2TagBits) / 8
	l2DataBytes := float64(cfg.L2Entries) * float64(l2DataBits) / 8

	var rep HWReport
	add := func(name string, entries int, bytes float64, a anchor) {
		area, leak, dyn := scale(a, bytes)
		rep.Structures = append(rep.Structures, HWStructure{
			Name: name, Entries: entries, SRAMBytes: bytes,
			AreaMM2: area, LeakageUW: leak, DynamicMW: dyn,
		})
		rep.TotalBytes += bytes
		rep.TotalArea += area
		rep.TotalLeak += leak
		rep.TotalDyn += dyn
	}
	add("Comparators", 0, 0, anchorComparators)
	add("L1 RCache", cfg.L1Entries, l1Bytes, anchorL1)
	add("L2 RCache tag", cfg.L2Entries, l2TagBytes, anchorL2Tag)
	add("L2 RCache data", cfg.L2Entries, l2DataBytes, anchorL2Data)
	return rep
}

// TotalSRAMKB returns the whole-GPU SRAM overhead in KB for a given core
// count (14.2 KB for the 16-core Nvidia configuration, 21.3 KB for the
// 24-core Intel configuration).
func (r HWReport) TotalSRAMKB(cores int) float64 {
	return r.TotalBytes * float64(cores) / 1024
}

// String renders the report as a Table 3-style ASCII table.
func (r HWReport) String() string {
	s := fmt.Sprintf("%-16s %8s %10s %10s %12s %12s\n",
		"Structure", "Entries", "SRAM(B)", "Area(mm2)", "Leakage(uW)", "Dynamic(mW)")
	for _, st := range r.Structures {
		entries := "-"
		if st.Entries > 0 {
			entries = fmt.Sprintf("%d", st.Entries)
		}
		bytes := "-"
		if st.SRAMBytes > 0 {
			bytes = fmt.Sprintf("%.1f", st.SRAMBytes)
		}
		s += fmt.Sprintf("%-16s %8s %10s %10.4f %12.2f %12.2f\n",
			st.Name, entries, bytes, st.AreaMM2, st.LeakageUW, st.DynamicMW)
	}
	s += fmt.Sprintf("%-16s %8s %10.1f %10.4f %12.2f %12.2f\n",
		"Total", "-", r.TotalBytes, r.TotalArea, r.TotalLeak, r.TotalDyn)
	return s
}
