package core

// The paper encrypts each 14-bit buffer ID with a per-kernel key before
// embedding it in a pointer (§5.2.4), so that an attacker who observes
// pointers across runs cannot forge an ID that indexes a victim buffer's
// RBT entry. The cipher must be a bijection on the 14-bit domain: every
// ciphertext decrypts to exactly one ID, and a forged ciphertext decrypts
// to a uniformly "random" ID whose RBT entry is almost surely invalid,
// turning forgeries into faults.
//
// A balanced 3-round Feistel network over two 7-bit halves provides exactly
// that: a key-dependent permutation of [0, 16384) cheap enough for a
// single-cycle hardware implementation.

const feistelRounds = 3

// roundF is the Feistel round function: a 7-bit S-box-style mix of the half
// and the round key, built from multiply-xor-shift steps.
func roundF(half, key uint32) uint32 {
	x := half ^ (key & 0x7F)
	x = (x*0x35 + (key >> 7 & 0x7F)) & 0x7F
	x ^= x >> 3
	x = (x * 0x4D) & 0x7F
	return x & 0x7F
}

// roundKeys derives the per-round 14-bit subkeys from a 64-bit kernel key.
func roundKeys(key uint64) [feistelRounds]uint32 {
	var rk [feistelRounds]uint32
	k := key
	for i := 0; i < feistelRounds; i++ {
		k = k*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		rk[i] = uint32(k>>32) & 0x3FFF
	}
	return rk
}

// EncryptID encrypts a 14-bit buffer ID under the per-kernel key.
func EncryptID(id uint16, key uint64) uint16 {
	rk := roundKeys(key)
	l := uint32(id>>7) & 0x7F
	r := uint32(id) & 0x7F
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^roundF(r, rk[i])
	}
	return uint16(l<<7 | r)
}

// DecryptID inverts EncryptID under the same key.
func DecryptID(ct uint16, key uint64) uint16 {
	rk := roundKeys(key)
	l := uint32(ct>>7) & 0x7F
	r := uint32(ct) & 0x7F
	for i := feistelRounds - 1; i >= 0; i-- {
		l, r = r^roundF(l, rk[i]), l
	}
	return uint16(l<<7 | r)
}
