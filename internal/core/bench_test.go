package core

import "testing"

// Micro-benchmarks for the GPUShield hardware structures: these measure the
// simulator's own cost per modeled operation (host-side), useful when
// optimizing the simulation loop.

func BenchmarkEncryptID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncryptID(uint16(i)&0x3FFF, 0xFEEDFACE)
	}
}

func BenchmarkDecryptID(b *testing.B) {
	ct := EncryptID(1234, 0xFEEDFACE)
	for i := 0; i < b.N; i++ {
		DecryptID(ct, 0xFEEDFACE)
	}
}

func BenchmarkBCUCheckL1Hit(b *testing.B) {
	bcu := NewBCU(DefaultBCUConfig())
	const key = uint64(42)
	rbt := NewRBT()
	rbt.Set(7, NewBounds(0x1000, 0x1000, false))
	bcu.InstallKernel(1, key, rbt, 0)
	req := CheckRequest{
		KernelID: 1,
		Pointer:  MakePointer(ClassID, EncryptID(7, key), 0x1000),
		MinAddr:  0x1000, MaxAddr: 0x1003,
		SingleTransaction: true, L1DHit: true,
	}
	bcu.Check(req) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bcu.Check(req)
	}
}

func BenchmarkBCUCheckType3(b *testing.B) {
	bcu := NewBCU(DefaultBCUConfig())
	req := CheckRequest{
		KernelID: 1,
		Pointer:  MakePointer(ClassSize, 12, 0x1000),
		MinOfs:   0, MaxOfs: 127,
	}
	for i := 0; i < b.N; i++ {
		bcu.Check(req)
	}
}

func BenchmarkRBTEncodeDecode(b *testing.B) {
	bounds := NewBounds(0x123456789A, 4096, true)
	var buf [BoundsEntryBytes]byte
	for i := 0; i < b.N; i++ {
		bounds.EncodeTo(buf[:])
		_ = DecodeBounds(buf[:])
	}
}

func BenchmarkL2RCacheLookup(b *testing.B) {
	c := NewL2RCache(64)
	for id := uint16(0); id < 64; id++ {
		c.Insert(1, id, NewBounds(uint64(id)*0x1000, 0x1000, false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(1, uint16(i)&63)
	}
}
