package core

// Fault-injection mutators: deterministic bit-level corruption entry points
// used by the internal/faults campaign engine to model soft errors in the
// GPUShield hardware structures (RBT entries, RCache tag/data arrays, the
// per-kernel Feistel key). They are ordinary state mutations — detection, if
// any, happens architecturally through the normal check paths.

// Flip returns a copy of b with the given bits inverted: baseMask applies to
// the packed base word (bit 63 = valid, bit 62 = read-only, bits 47..0 =
// base address), sizeMask to the 32-bit size.
func (b Bounds) Flip(baseMask uint64, sizeMask uint32) Bounds {
	return Bounds{base: b.base ^ baseMask, size: b.size ^ sizeMask}
}

// Corrupt flips bits in the architectural copy of id's RBT entry, keeping
// the valid-entry count coherent. It reports whether the table changed (an
// out-of-range id or zero masks leave it untouched).
func (t *RBT) Corrupt(id uint16, baseMask uint64, sizeMask uint32) bool {
	if int(id) >= NumIDs || (baseMask == 0 && sizeMask == 0) {
		return false
	}
	old := t.Lookup(id)
	nu := old.Flip(baseMask, sizeMask)
	switch {
	case old.Valid() && !nu.Valid():
		t.n--
	case !old.Valid() && nu.Valid():
		t.n++
	}
	t.put(id, nu)
	return true
}

// Corrupt flips bits in slot idx: idMask in the buffer-ID tag, baseMask and
// sizeMask in the cached bounds. Only valid (occupied) slots are corrupted —
// a soft error in an invalid entry is architecturally invisible — and the
// report says whether anything changed.
func (c *L1RCache) Corrupt(idx int, idMask uint16, baseMask uint64, sizeMask uint32) bool {
	return corruptEntry(c.entries, idx, idMask, baseMask, sizeMask)
}

// Corrupt flips bits in slot idx of the L2 RCache (same contract as the L1).
func (c *L2RCache) Corrupt(idx int, idMask uint16, baseMask uint64, sizeMask uint32) bool {
	return corruptEntry(c.entries, idx, idMask, baseMask, sizeMask)
}

func corruptEntry(entries []RCacheEntry, idx int, idMask uint16, baseMask uint64, sizeMask uint32) bool {
	if idx < 0 || idx >= len(entries) || !entries[idx].valid {
		return false
	}
	e := &entries[idx]
	e.ID = (e.ID ^ idMask) & (NumIDs - 1)
	e.Bounds = e.Bounds.Flip(baseMask, sizeMask)
	return true
}

// PerturbKey flips bits of the per-kernel Feistel key programmed into this
// BCU, modeling corruption of the key register. Subsequent Type-2 checks
// decrypt pointer payloads with the wrong key and so look up the wrong (most
// likely invalid) RBT entry. Reports whether the kernel was installed.
func (b *BCU) PerturbKey(kernelID uint16, mask uint64) bool {
	ctx := b.kernels[kernelID]
	if ctx == nil || mask == 0 {
		return false
	}
	ctx.key ^= mask
	b.gen++ // decrypt state changed: invalidate outstanding CheckMemos
	return true
}

// CorruptRCache flips bits in one RCache slot of the bank serving kernelID:
// level 1 targets the L1 RCache, level 2 the L2. It reports whether an
// occupied slot was actually corrupted.
func (b *BCU) CorruptRCache(level int, kernelID uint16, idx int, idMask uint16, baseMask uint64, sizeMask uint32) bool {
	bank := b.bank(kernelID)
	switch level {
	case 1:
		return b.l1[bank].Corrupt(idx, idMask, baseMask, sizeMask)
	case 2:
		return b.l2[bank].Corrupt(idx, idMask, baseMask, sizeMask)
	}
	return false
}
