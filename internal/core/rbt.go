package core

import "fmt"

// Bounds is the per-buffer metadata format of Fig. 6: a 48-bit virtual base
// address with the valid and read-only flags folded into its two unused
// upper bits, plus a 32-bit size.
type Bounds struct {
	base uint64 // bit 63 = valid, bit 62 = read-only, bits 47..0 = base address
	size uint32
}

const (
	boundsValidBit    = uint64(1) << 63
	boundsReadOnlyBit = uint64(1) << 62
)

// NewBounds builds a valid bounds entry.
func NewBounds(base uint64, size uint32, readOnly bool) Bounds {
	b := Bounds{base: base&AddrMask | boundsValidBit, size: size}
	if readOnly {
		b.base |= boundsReadOnlyBit
	}
	return b
}

// Valid reports whether the entry holds live metadata.
func (b Bounds) Valid() bool { return b.base&boundsValidBit != 0 }

// ReadOnly reports whether stores through this buffer are illegal.
func (b Bounds) ReadOnly() bool { return b.base&boundsReadOnlyBit != 0 }

// Base returns the 48-bit virtual base address.
func (b Bounds) Base() uint64 { return b.base & AddrMask }

// Size returns the buffer size in bytes.
func (b Bounds) Size() uint32 { return b.size }

// Contains reports whether the byte range [lo, hi] lies inside the buffer.
func (b Bounds) Contains(lo, hi uint64) bool {
	base := b.Base()
	return lo >= base && hi < base+uint64(b.size)
}

// EncodeTo serializes the entry into 16 little-endian bytes (the in-memory
// RBT format written to device memory by the driver).
func (b Bounds) EncodeTo(buf []byte) {
	_ = buf[15]
	for i := 0; i < 8; i++ {
		buf[i] = byte(b.base >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(b.size >> (8 * i))
	}
	buf[12], buf[13], buf[14], buf[15] = 0, 0, 0, 0
}

// DecodeBounds parses a 16-byte in-memory RBT entry.
func DecodeBounds(buf []byte) Bounds {
	_ = buf[15]
	var b Bounds
	for i := 0; i < 8; i++ {
		b.base |= uint64(buf[i]) << (8 * i)
	}
	for i := 0; i < 4; i++ {
		b.size |= uint32(buf[8+i]) << (8 * i)
	}
	return b
}

// BoundsEntryBytes is the in-memory footprint of one RBT entry.
const BoundsEntryBytes = 16

// RBT is the per-kernel Region Bounds Table (§5.2.3): a 16384-entry
// direct-mapped structure indexed by the 14-bit buffer ID. The driver
// allocates it in device memory upon kernel launch; this struct additionally
// keeps an architectural copy so the model can be used standalone.
//
// The architectural copy is stored sparsely: a launch populates a handful of
// IDs out of the 16384-slot space, and the old dense [NumIDs]Bounds array
// cost a 256 KB allocation + zeroing per PrepareLaunch — the single largest
// per-launch allocation in the simulator. Absent IDs read as the zero (thus
// invalid) Bounds, exactly as the dense array did.
type RBT struct {
	ids     []uint16 // occupied slots, ascending
	entries []Bounds // parallel to ids
	n       int      // valid-entry count
}

// NewRBT returns an empty table.
func NewRBT() *RBT { return &RBT{} }

// find returns the position of id in ids, or the insertion point with
// ok=false. Binary search: tables are small but the BCU's RCache-miss path
// calls Lookup, so keep it logarithmic rather than linear.
func (t *RBT) find(id uint16) (int, bool) {
	lo, hi := 0, len(t.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(t.ids) && t.ids[lo] == id
}

// put stores b at id, inserting a slot if absent.
func (t *RBT) put(id uint16, b Bounds) {
	i, ok := t.find(id)
	if ok {
		t.entries[i] = b
		return
	}
	t.ids = append(t.ids, 0)
	t.entries = append(t.entries, Bounds{})
	copy(t.ids[i+1:], t.ids[i:])
	copy(t.entries[i+1:], t.entries[i:])
	t.ids[i], t.entries[i] = id, b
}

// Set installs bounds for a buffer ID.
func (t *RBT) Set(id uint16, b Bounds) error {
	if int(id) >= NumIDs {
		return fmt.Errorf("core: buffer ID %d out of range", id)
	}
	if !t.Lookup(id).Valid() && b.Valid() {
		t.n++
	}
	t.put(id, b)
	return nil
}

// Lookup returns the bounds for id. Invalid entries are returned as-is; the
// BCU treats them as bounds-check failures.
func (t *RBT) Lookup(id uint16) Bounds {
	if int(id) >= NumIDs {
		return Bounds{}
	}
	if i, ok := t.find(id); ok {
		return t.entries[i]
	}
	return Bounds{}
}

// Each calls f for every occupied slot in ascending ID order — the order the
// driver serializes the table into device memory.
func (t *RBT) Each(f func(id uint16, b Bounds)) {
	for i, id := range t.ids {
		f(id, t.entries[i])
	}
}

// Len returns the number of valid entries.
func (t *RBT) Len() int { return t.n }

// SizeBytes returns the device-memory footprint of the table.
func (t *RBT) SizeBytes() int { return NumIDs * BoundsEntryBytes }

// EntryAddr returns the device-memory address of id's entry given the
// table's base address; the BCU uses it to fetch entries on L2 RCache
// misses.
func EntryAddr(rbtBase uint64, id uint16) uint64 {
	return rbtBase + uint64(id)*BoundsEntryBytes
}
