package core

import (
	"reflect"
	"testing"
)

// CheckWarm contract (PR 10): a caller-held CheckMemo may skip only the
// kernel-table lookup and the Feistel payload decryption. Everything
// observable — results, violations, stall accounting, RCache and BCU
// counters — must be indistinguishable from plain Check, and the memo must
// go stale the instant any per-kernel decrypt state changes.

// twinBCUs builds two identically-programmed BCUs (same kernel, key, RBT
// contents) so one can run Check and the other CheckWarm with no shared
// mutable state.
func twinBCUs(mode FailureMode) (*BCU, *BCU, uint64, uint16) {
	a, key, id := newTestBCU(mode)
	b, _, _ := newTestBCU(mode)
	return a, b, key, id
}

// TestCheckWarmMatchesCheck streams a mixed request sequence — hits,
// misses, OOB, read-only stores, a foreign buffer tag — through Check on
// one BCU and CheckWarm (single reused memo) on its twin, and demands
// identical results and identical counter state after every step.
func TestCheckWarmMatchesCheck(t *testing.T) {
	cold, warm, key, id := twinBCUs(FailLog)
	var memo CheckMemo
	seq := []CheckRequest{
		req(key, id, 0x1000, 0x1003, false),  // RBT fetch, then caches warm
		req(key, id, 0x1004, 0x1007, false),  // L1 hit, memo hit
		req(key, id, 0x13FC, 0x13FF, true),   // last word, store
		req(key, id, 0x1400, 0x1403, false),  // one past the end: OOB
		req(key, 9, 0x8000, 0x8003, false),   // different tag: memo misses
		req(key, 9, 0x8000, 0x8003, true),    // read-only store: violation
		req(key, id, 0x1008, 0x100B, false),  // back to the first tag
		req(key, 12345, 0x1000, 0x1003, true), // unknown ID
	}
	for i, r := range seq {
		want := cold.Check(r)
		got := warm.CheckWarm(r, &memo)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: CheckWarm=%+v Check=%+v", i, got, want)
		}
	}
	if !reflect.DeepEqual(warm.Stats, cold.Stats) {
		t.Fatalf("BCU stats diverged:\nwarm %+v\ncold %+v", warm.Stats, cold.Stats)
	}
	if warm.L1Stats() != cold.L1Stats() || warm.L2Stats() != cold.L2Stats() {
		t.Fatalf("RCache stats diverged: warm L1=%+v L2=%+v, cold L1=%+v L2=%+v",
			warm.L1Stats(), warm.L2Stats(), cold.L1Stats(), cold.L2Stats())
	}
	if len(warm.Violations()) != len(cold.Violations()) {
		t.Fatalf("violation logs diverged: %d vs %d", len(warm.Violations()), len(cold.Violations()))
	}
}

// TestCheckWarmMemoLifecycle verifies the memo is populated on the first
// Type-2 check, hit on a same-tag repeat, and re-resolved on a tag switch.
func TestCheckWarmMemoLifecycle(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	var memo CheckMemo
	if memo.resolve {
		t.Fatal("zero memo must be empty")
	}
	b.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
	if !memo.resolve || memo.id != id {
		t.Fatalf("memo not populated: %+v", memo)
	}
	first := memo
	b.CheckWarm(req(key, id, 0x1004, 0x1007, false), &memo)
	if memo != first {
		t.Fatalf("same-tag repeat rewrote the memo: %+v -> %+v", first, memo)
	}
	b.CheckWarm(req(key, 9, 0x8000, 0x8003, false), &memo)
	if memo.id != 9 {
		t.Fatalf("tag switch did not re-resolve: %+v", memo)
	}
}

// TestCheckWarmGenInvalidation covers every decrypt-state mutation that
// must kill outstanding memos: kernel reinstall with a new key, kernel
// removal, and key perturbation. After each, CheckWarm must behave exactly
// like a cold Check — never replay the stale resolution.
func TestCheckWarmGenInvalidation(t *testing.T) {
	t.Run("reinstall-new-key", func(t *testing.T) {
		b, key, id := newTestBCU(FailLog)
		var memo CheckMemo
		b.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
		// Reinstall kernel 1 under a new key: pointers minted with the old
		// key must now decrypt to garbage and fail.
		rbt := NewRBT()
		rbt.Set(7, NewBounds(0x1000, 0x400, false))
		b.InstallKernel(1, key^0xBAD, rbt, 0x7F00_0000)
		res := b.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
		if res.OK {
			t.Fatal("stale memo replayed across kernel reinstall")
		}
	})
	t.Run("remove-kernel", func(t *testing.T) {
		b, key, id := newTestBCU(FailLog)
		var memo CheckMemo
		b.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
		b.RemoveKernel(1)
		res := b.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
		if res.OK || res.Violation == nil || res.Violation.Kind != ViolationInvalidID {
			t.Fatalf("stale memo replayed across kernel removal: %+v", res)
		}
	})
	t.Run("perturb-key", func(t *testing.T) {
		cold, warm, key, id := twinBCUs(FailLog)
		var memo CheckMemo
		warm.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
		cold.Check(req(key, id, 0x1000, 0x1003, false))
		if !warm.PerturbKey(1, 0x40) || !cold.PerturbKey(1, 0x40) {
			t.Fatal("PerturbKey refused")
		}
		r := req(key, id, 0x1004, 0x1007, false)
		got, want := warm.CheckWarm(r, &memo), cold.Check(r)
		if got.OK || !reflect.DeepEqual(got, want) {
			t.Fatalf("post-perturb divergence: CheckWarm=%+v Check=%+v", got, want)
		}
	})
}

// TestCheckWarmCorruptionReadsLive asserts the memo survives RCache
// corruption — bounds are never memoized, so a corrupted cached entry must
// affect CheckWarm exactly as it affects Check, with no gen bump needed.
func TestCheckWarmCorruptionReadsLive(t *testing.T) {
	cold, warm, key, id := twinBCUs(FailLog)
	var memo CheckMemo
	// Warm both: entry for id 7 now sits in each L1 RCache.
	warm.CheckWarm(req(key, id, 0x1000, 0x1003, false), &memo)
	cold.Check(req(key, id, 0x1000, 0x1003, false))
	// Zero the cached size field in slot 0 of both L1s identically
	// (0x400 ^ 0x400): every in-bounds access is now OOB per the cache.
	if !warm.CorruptRCache(1, 1, 0, 0, 0, 0x400) || !cold.CorruptRCache(1, 1, 0, 0, 0, 0x400) {
		t.Fatal("CorruptRCache refused")
	}
	r := req(key, id, 0x1200, 0x1203, false) // inside real bounds, outside corrupted ones
	got, want := warm.CheckWarm(r, &memo), cold.Check(r)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corruption visibility diverged: CheckWarm=%+v Check=%+v", got, want)
	}
	if got.OK {
		t.Fatalf("corrupted bounds not read live: %+v", got)
	}
}
