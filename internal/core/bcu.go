package core

import "fmt"

// FailureMode selects how the BCU handles a bounds-checking failure
// (§5.5.2).
type FailureMode uint8

const (
	// FailLog logs the error, returns zero for loads, and silently drops
	// stores; violations are reported at kernel completion.
	FailLog FailureMode = iota
	// FailFault raises a precise fault, aborting the kernel.
	FailFault
)

func (m FailureMode) String() string {
	if m == FailFault {
		return "fault"
	}
	return "log"
}

// ViolationKind classifies a detected memory-safety violation.
type ViolationKind uint8

// Violation kinds.
const (
	ViolationOOB       ViolationKind = iota // address range outside buffer bounds
	ViolationInvalidID                      // decrypted ID names an invalid RBT entry (forged or stale pointer)
	ViolationReadOnly                       // store through a read-only buffer
	ViolationNegOfs                         // Type-3 negative offset
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationOOB:
		return "out-of-bounds"
	case ViolationInvalidID:
		return "invalid-buffer-id"
	case ViolationReadOnly:
		return "read-only-write"
	case ViolationNegOfs:
		return "negative-offset"
	}
	return "violation?"
}

// Violation records one detected illegal access.
type Violation struct {
	Kind     ViolationKind
	KernelID uint16
	BufferID uint16 // decrypted ID (Type 2) or 0 (Type 3)
	PC       int
	MinAddr  uint64
	MaxAddr  uint64
	IsStore  bool
}

func (v Violation) String() string {
	op := "load"
	if v.IsStore {
		op = "store"
	}
	return fmt.Sprintf("%s %s kernel=%d buffer=%d pc=@%d range=[%#x,%#x]",
		v.Kind, op, v.KernelID, v.BufferID, v.PC, v.MinAddr, v.MaxAddr)
}

// BCUConfig parameterizes one core's bounds-checking unit.
type BCUConfig struct {
	L1Entries int // L1 RCache entries (default 4)
	L2Entries int // L2 RCache entries (default 64)
	L1Latency int // L1 RCache access latency in cycles (default 1)
	L2Latency int // L2 RCache access latency in cycles (default 3)
	Mode      FailureMode

	// PerThread disables the paper's workgroup/warp-level optimization
	// (§1, §5.5): instead of one min/max range check per coalesced warp
	// instruction, the BCU checks every active lane individually. Exists
	// for the ablation study quantifying the optimization's value.
	PerThread bool

	// Partitions splits the RCaches into banks selected by kernel ID, the
	// §6.2 mitigation for intra-core multi-kernel sharing ("double and
	// partition RCaches"). 0 or 1 means unpartitioned; 2 gives each of two
	// co-resident kernels a private half (each of the configured entry
	// counts, i.e. the doubled-capacity design the paper suggests).
	Partitions int
}

// DefaultBCUConfig returns the paper's default BCU: 4-entry 1-cycle L1
// RCache, 64-entry 3-cycle L2 RCache.
func DefaultBCUConfig() BCUConfig {
	return BCUConfig{L1Entries: 4, L2Entries: 64, L1Latency: 1, L2Latency: 3, Mode: FailLog}
}

// BCUStats accumulates bounds-checking activity for one BCU.
type BCUStats struct {
	Checks        uint64 // Type-2 runtime checks performed
	Type3Checks   uint64 // Type-3 embedded-size checks (no RCache access)
	Skipped       uint64 // accesses not checked (Type-1 / statically proven)
	L1Hits        uint64
	L2Hits        uint64
	RBTFetches    uint64 // L2 RCache misses serviced from the in-memory RBT
	StallCycles   uint64 // pipeline bubbles injected
	Violations    uint64
	SquashedLoads uint64
	DroppedStores uint64
}

// kernelCtx is the per-kernel state the driver programs into each core the
// kernel runs on: the decryption key and the RBT's location (§5.4).
type kernelCtx struct {
	key     uint64
	rbt     *RBT
	rbtBase uint64
}

// RBTFetcher reads an RBT entry from device memory, returning its bounds
// and the access latency in cycles. The simulator wires this to the L2
// cache/DRAM path; standalone users can rely on the architectural fallback.
type RBTFetcher func(rbtBase uint64, id uint16) (Bounds, uint64)

// BCU is the bounds-checking unit attached to one core's LSU (§5.5). It
// owns the core's RCache hierarchy (one bank per partition) and performs
// warp-level address-range checks for every protected memory instruction.
type BCU struct {
	cfg     BCUConfig
	l1      []*L1RCache
	l2      []*L2RCache
	kernels map[uint16]*kernelCtx
	fetch   RBTFetcher
	Stats   BCUStats

	violations []Violation
	faulted    bool
	fault      Violation

	// gen counts mutations of per-kernel decrypt state (kernel install or
	// removal, key perturbation): any CheckMemo stamped with an older gen
	// is stale. RCache/RBT corruption does not bump it — bounds are always
	// read live from the caches and table, never memoized.
	gen uint64
}

// NewBCU builds a BCU from cfg.
func NewBCU(cfg BCUConfig) *BCU {
	if cfg.L1Entries == 0 {
		cfg = DefaultBCUConfig()
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	b := &BCU{
		cfg:     cfg,
		kernels: make(map[uint16]*kernelCtx),
	}
	for i := 0; i < cfg.Partitions; i++ {
		b.l1 = append(b.l1, NewL1RCache(cfg.L1Entries))
		b.l2 = append(b.l2, NewL2RCache(cfg.L2Entries))
	}
	return b
}

// bank selects the RCache partition for a kernel (§6.2: kernels map to
// banks by scheduler position; kernel ID is our stand-in).
func (b *BCU) bank(kernelID uint16) int {
	return int(kernelID) % b.cfg.Partitions
}

// Config returns the BCU parameters.
func (b *BCU) Config() BCUConfig { return b.cfg }

// SetRBTFetcher installs the device-memory fetch path for RBT entries.
func (b *BCU) SetRBTFetcher(f RBTFetcher) { b.fetch = f }

// InstallKernel programs the per-kernel secret key and RBT location into
// the core, as the driver does at kernel launch (§5.4).
func (b *BCU) InstallKernel(kernelID uint16, key uint64, rbt *RBT, rbtBase uint64) {
	b.gen++
	b.kernels[kernelID] = &kernelCtx{key: key, rbt: rbt, rbtBase: rbtBase}
}

// RemoveKernel tears down per-kernel state and flushes the kernel's RCache
// bank, as on kernel termination or context switch (§5.5).
func (b *BCU) RemoveKernel(kernelID uint16) {
	b.gen++
	delete(b.kernels, kernelID)
	b.l1[b.bank(kernelID)].Flush()
	b.l2[b.bank(kernelID)].Flush()
}

// L1Stats and L2Stats expose aggregate RCache hit statistics across banks.
func (b *BCU) L1Stats() RCacheStats {
	var s RCacheStats
	for _, c := range b.l1 {
		s.Accesses += c.Stats.Accesses
		s.Hits += c.Stats.Hits
	}
	return s
}

func (b *BCU) L2Stats() RCacheStats {
	var s RCacheStats
	for _, c := range b.l2 {
		s.Accesses += c.Stats.Accesses
		s.Hits += c.Stats.Hits
	}
	return s
}

// Violations returns the violation log (FailLog mode).
func (b *BCU) Violations() []Violation { return b.violations }

// TakeViolations removes and returns the violation records belonging to one
// kernel, clearing its fault state with them. Called at kernel termination:
// kernel IDs are drawn from a small space and recycle across launches, so a
// long-lived BCU that kept the log would re-attribute an earlier kernel's
// violations to a later one that happens to draw the same ID — and the log
// would grow without bound in a serving daemon.
func (b *BCU) TakeViolations(kernelID uint16) []Violation {
	var taken []Violation
	kept := b.violations[:0]
	for _, v := range b.violations {
		if v.KernelID == kernelID {
			taken = append(taken, v)
		} else {
			kept = append(kept, v)
		}
	}
	// Drop the tail so retained records do not pin freed entries.
	for i := len(kept); i < len(b.violations); i++ {
		b.violations[i] = Violation{}
	}
	b.violations = kept
	if b.faulted && b.fault.KernelID == kernelID {
		b.faulted = false
		b.fault = Violation{}
	}
	return taken
}

// Faulted reports whether a precise fault was raised, and the violation
// that caused it.
func (b *BCU) Faulted() (Violation, bool) { return b.fault, b.faulted }

// ResetFault clears fault state (between launches in tests).
func (b *BCU) ResetFault() { b.faulted = false }

// CheckRequest describes one warp-level coalesced memory instruction to be
// bounds checked. The address-gathering pipeline has already reduced the
// active lanes' addresses to a [MinAddr, MaxAddr] range (inclusive of the
// access's last byte), so a single range comparison covers the whole warp.
type CheckRequest struct {
	KernelID uint16
	Pointer  uint64 // tagged pointer (class + payload); address bits unused here
	MinAddr  uint64 // untagged lowest byte accessed
	MaxAddr  uint64 // untagged highest byte accessed
	MinOfs   int64  // Type 3: lowest byte offset from the buffer base
	MaxOfs   int64  // Type 3: highest byte offset from the buffer base
	IsStore  bool
	PC       int

	// SingleTransaction and L1DHit describe the instruction's LSU behaviour:
	// a pipeline bubble is visible only when a single coalesced transaction
	// hits in the L1 data cache, because longer LSU paths hide the RCache
	// access (Fig. 12).
	SingleTransaction bool
	L1DHit            bool
}

// ServiceLevel reports which structure satisfied a bounds check.
type ServiceLevel uint8

// Service levels.
const (
	ServedSkip  ServiceLevel = iota // Type 1: no check performed
	ServedL1                        // L1 RCache hit
	ServedL2                        // L2 RCache hit
	ServedRBT                       // fetched from the in-memory RBT
	ServedType3                     // embedded-size check, no RCache access
)

// CheckResult is the BCU's verdict for one request.
type CheckResult struct {
	OK           bool
	Stall        int    // pipeline bubbles injected into the LSU
	ExtraLatency uint64 // additional completion latency (RBT fetch not hidden)
	Level        ServiceLevel
	Violation    *Violation
	SquashLoad   bool // FailLog: loads must return zero
	DropStore    bool // FailLog: stores must be discarded
}

// Check bounds-checks one warp memory instruction. Pointer class selects
// the path: Type 1 skips checking; Type 2 decrypts the buffer ID and walks
// the RCache hierarchy; Type 3 compares the explicit offsets against the
// size embedded in the pointer without touching the RCaches (§5.3.3).
func (b *BCU) Check(req CheckRequest) CheckResult {
	switch Class(req.Pointer) {
	case ClassUnprotected:
		b.Stats.Skipped++
		return CheckResult{OK: true, Level: ServedSkip}
	case ClassSize:
		return b.checkType3(req)
	default:
		return b.checkType2(req)
	}
}

// CheckMemo is a caller-held decrypt memo for CheckWarm: the (kernel,
// pointer tag) → (buffer ID, kernel context) resolution of the last Type-2
// check through this call site. The key is the pointer's top 16 bits
// (class + encrypted payload) — the only pointer bits the resolution reads
// — so a streaming access whose address advances under a constant buffer
// tag keeps hitting. A memo is valid only while the BCU's per-kernel
// decrypt state is unchanged (same gen); the zero value is an empty memo.
// It memoizes nothing timing-visible — bounds, RCache walks, stall
// accounting, and violations are always recomputed live — so CheckWarm and
// Check are observably identical.
type CheckMemo struct {
	gen     uint64
	ctx     *kernelCtx
	kernel  uint16
	tag     uint16 // pointer class + payload bits (>> AddrBits)
	id      uint16
	resolve bool
}

// CheckWarm is Check with a decrypt memo: when memo holds this (kernel,
// pointer tag) pair at the current generation, the kernel-table lookup and
// the Feistel payload decryption are skipped. Every counter, RCache access,
// bubble, and violation fires exactly as in Check.
func (b *BCU) CheckWarm(req CheckRequest, memo *CheckMemo) CheckResult {
	switch Class(req.Pointer) {
	case ClassUnprotected:
		b.Stats.Skipped++
		return CheckResult{OK: true, Level: ServedSkip}
	case ClassSize:
		return b.checkType3(req)
	}
	b.Stats.Checks++
	tag := uint16(req.Pointer >> AddrBits)
	if memo.resolve && memo.gen == b.gen && memo.kernel == req.KernelID && memo.tag == tag {
		return b.checkType2Resolved(req, memo.ctx, memo.id)
	}
	ctx := b.kernels[req.KernelID]
	if ctx == nil {
		// No key installed for this kernel: treat as a forged pointer.
		return b.fail(req, Violation{Kind: ViolationInvalidID, KernelID: req.KernelID,
			PC: req.PC, MinAddr: req.MinAddr, MaxAddr: req.MaxAddr, IsStore: req.IsStore})
	}
	id := DecryptID(Payload(req.Pointer), ctx.key)
	*memo = CheckMemo{gen: b.gen, ctx: ctx, kernel: req.KernelID, tag: tag, id: id, resolve: true}
	return b.checkType2Resolved(req, ctx, id)
}

func (b *BCU) checkType3(req CheckRequest) CheckResult {
	b.Stats.Type3Checks++
	size := int64(1) << (Payload(req.Pointer) & 0x3F)
	if req.MinOfs < 0 {
		res := b.fail(req, Violation{Kind: ViolationNegOfs, KernelID: req.KernelID,
			PC: req.PC, MinAddr: req.MinAddr, MaxAddr: req.MaxAddr, IsStore: req.IsStore})
		res.Level = ServedType3
		return res
	}
	if req.MaxOfs >= size {
		res := b.fail(req, Violation{Kind: ViolationOOB, KernelID: req.KernelID,
			PC: req.PC, MinAddr: req.MinAddr, MaxAddr: req.MaxAddr, IsStore: req.IsStore})
		res.Level = ServedType3
		return res
	}
	return CheckResult{OK: true, Level: ServedType3}
}

func (b *BCU) checkType2(req CheckRequest) CheckResult {
	b.Stats.Checks++
	ctx := b.kernels[req.KernelID]
	if ctx == nil {
		// No key installed for this kernel: treat as a forged pointer.
		return b.fail(req, Violation{Kind: ViolationInvalidID, KernelID: req.KernelID,
			PC: req.PC, MinAddr: req.MinAddr, MaxAddr: req.MaxAddr, IsStore: req.IsStore})
	}
	id := DecryptID(Payload(req.Pointer), ctx.key)
	return b.checkType2Resolved(req, ctx, id)
}

// checkType2Resolved is the RCache walk and bounds comparison shared by
// checkType2 and CheckWarm, after the pointer payload has been decrypted
// (or recalled from a memo) into a buffer ID.
func (b *BCU) checkType2Resolved(req CheckRequest, ctx *kernelCtx, id uint16) CheckResult {
	var (
		bounds Bounds
		stall  int
		extra  uint64
		level  ServiceLevel
	)
	l1 := b.l1[b.bank(req.KernelID)]
	l2 := b.l2[b.bank(req.KernelID)]
	if bd, ok := l1.Lookup(req.KernelID, id); ok {
		b.Stats.L1Hits++
		bounds = bd
		level = ServedL1
		stall = b.bubble(req, b.cfg.L1Latency-1)
	} else if bd, ok := l2.Lookup(req.KernelID, id); ok {
		b.Stats.L2Hits++
		bounds = bd
		l1.Insert(req.KernelID, id, bd)
		level = ServedL2
		stall = b.bubble(req, b.cfg.L1Latency-1+b.cfg.L2Latency-2)
	} else {
		b.Stats.RBTFetches++
		level = ServedRBT
		var lat uint64
		if b.fetch != nil {
			bounds, lat = b.fetch(ctx.rbtBase, id)
		} else {
			bounds, lat = ctx.rbt.Lookup(id), 50
		}
		l2.Insert(req.KernelID, id, bounds)
		l1.Insert(req.KernelID, id, bounds)
		// An RBT fetch overlaps the transaction's own miss handling (it
		// behaves like a TLB-miss-class event, §5.5); it is exposed only
		// when a single coalesced transaction hit in the L1 Dcache, the
		// same visibility condition as the pipeline bubble (Fig. 12).
		if req.L1DHit && req.SingleTransaction {
			extra = lat
		}
	}

	v := Violation{KernelID: req.KernelID, BufferID: id, PC: req.PC,
		MinAddr: req.MinAddr, MaxAddr: req.MaxAddr, IsStore: req.IsStore}
	switch {
	case !bounds.Valid():
		v.Kind = ViolationInvalidID
	case !bounds.Contains(req.MinAddr, req.MaxAddr):
		v.Kind = ViolationOOB
	case req.IsStore && bounds.ReadOnly():
		v.Kind = ViolationReadOnly
	default:
		return CheckResult{OK: true, Stall: stall, ExtraLatency: extra, Level: level}
	}
	res := b.fail(req, v)
	res.Stall, res.ExtraLatency, res.Level = stall, extra, level
	return res
}

// bubble converts an RCache path latency overshoot into a pipeline stall.
// The LSU pipeline hides the check entirely unless the instruction was a
// single transaction hitting in the L1 data cache (Fig. 12).
func (b *BCU) bubble(req CheckRequest, cycles int) int {
	if cycles <= 0 || !req.SingleTransaction || !req.L1DHit {
		return 0
	}
	b.Stats.StallCycles += uint64(cycles)
	return cycles
}

func (b *BCU) fail(req CheckRequest, v Violation) CheckResult {
	b.Stats.Violations++
	if b.cfg.Mode == FailFault {
		if !b.faulted {
			b.faulted, b.fault = true, v
		}
		return CheckResult{OK: false, Violation: &v}
	}
	b.violations = append(b.violations, v)
	res := CheckResult{OK: false, Violation: &v}
	if req.IsStore {
		b.Stats.DroppedStores++
		res.DropStore = true
	} else {
		b.Stats.SquashedLoads++
		res.SquashLoad = true
	}
	return res
}
