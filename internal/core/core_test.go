package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointerRoundTrip(t *testing.T) {
	f := func(class uint8, payload uint16, addr uint64) bool {
		c := PtrClass(class % 3)
		pl := payload & uint16(PayloadMask)
		a := addr & AddrMask
		p := MakePointer(c, pl, a)
		return Class(p) == c && Payload(p) == pl && Addr(p) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointerArithmeticPreservesTag(t *testing.T) {
	p := MakePointer(ClassID, 0x1A2B, 0x2000_0000_0000)
	q := p + 4096 // in-range pointer arithmetic
	if Class(q) != ClassID || Payload(q) != 0x1A2B {
		t.Fatalf("tag not preserved across arithmetic")
	}
	if Addr(q) != 0x2000_0000_1000 {
		t.Fatalf("address wrong: %#x", Addr(q))
	}
}

func TestWithAddr(t *testing.T) {
	p := MakePointer(ClassSize, 12, 0x1000)
	q := WithAddr(p, 0x2000)
	if Class(q) != ClassSize || Payload(q) != 12 || Addr(q) != 0x2000 {
		t.Fatalf("WithAddr mangled pointer: class=%v payload=%d addr=%#x", Class(q), Payload(q), Addr(q))
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[uint64]uint16{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
	f := func(n uint32) bool {
		if n == 0 {
			return Log2Ceil(0) == 0
		}
		b := Log2Ceil(uint64(n))
		return uint64(1)<<b >= uint64(n) && (b == 0 || uint64(1)<<(b-1) < uint64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeistelBijectiveOverFullDomain(t *testing.T) {
	// Exhaustive: every 14-bit ID must encrypt to a unique ciphertext and
	// decrypt back, for several keys.
	for _, key := range []uint64{0, 1, 0xDEADBEEF, math.MaxUint64, 0x123456789ABCDEF0} {
		seen := make([]bool, NumIDs)
		for id := 0; id < NumIDs; id++ {
			ct := EncryptID(uint16(id), key)
			if int(ct) >= NumIDs {
				t.Fatalf("ciphertext %d out of domain", ct)
			}
			if seen[ct] {
				t.Fatalf("key %#x: collision at ciphertext %d", key, ct)
			}
			seen[ct] = true
			if got := DecryptID(ct, key); got != uint16(id) {
				t.Fatalf("key %#x: decrypt(encrypt(%d)) = %d", key, id, got)
			}
		}
	}
}

func TestFeistelKeySensitivity(t *testing.T) {
	// Different keys must produce substantially different mappings —
	// otherwise pointer observations from one launch would transfer to the
	// next (§5.2.4).
	same := 0
	for id := uint16(0); id < 1024; id++ {
		if EncryptID(id, 0x1111) == EncryptID(id, 0x2222) {
			same++
		}
	}
	if same > 32 { // expect ~1/16384 collisions per ID, far below 32/1024
		t.Fatalf("%d/1024 IDs encrypt identically under different keys", same)
	}
}

func TestFeistelWrongKeyScrambles(t *testing.T) {
	// Decrypting with the wrong key must not recover the ID (except for
	// rare coincidences).
	hits := 0
	for id := uint16(0); id < 1024; id++ {
		ct := EncryptID(id, 42)
		if DecryptID(ct, 43) == id {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("wrong-key decryption recovered %d/1024 IDs", hits)
	}
}

func TestBoundsFields(t *testing.T) {
	b := NewBounds(0x1234_5678_9ABC, 4096, true)
	if !b.Valid() || !b.ReadOnly() {
		t.Fatalf("flags lost: %+v", b)
	}
	if b.Base() != 0x1234_5678_9ABC || b.Size() != 4096 {
		t.Fatalf("fields wrong: base=%#x size=%d", b.Base(), b.Size())
	}
	var zero Bounds
	if zero.Valid() {
		t.Fatalf("zero bounds must be invalid")
	}
}

func TestBoundsContains(t *testing.T) {
	b := NewBounds(0x1000, 256, false)
	cases := []struct {
		lo, hi uint64
		want   bool
	}{
		{0x1000, 0x1003, true},
		{0x10FC, 0x10FF, true},  // last word
		{0x10FD, 0x1100, false}, // crosses the end
		{0x0FFF, 0x1002, false}, // starts before
		{0x1100, 0x1103, false}, // past the end
	}
	for _, c := range cases {
		if got := b.Contains(c.lo, c.hi); got != c.want {
			t.Errorf("Contains(%#x,%#x) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBoundsEncodeDecodeRoundTrip(t *testing.T) {
	f := func(base uint64, size uint32, ro bool) bool {
		b := NewBounds(base&AddrMask, size, ro)
		var buf [BoundsEntryBytes]byte
		b.EncodeTo(buf[:])
		d := DecodeBounds(buf[:])
		return d.Valid() == b.Valid() && d.ReadOnly() == b.ReadOnly() &&
			d.Base() == b.Base() && d.Size() == b.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRBTSetLookup(t *testing.T) {
	rbt := NewRBT()
	if rbt.Len() != 0 {
		t.Fatalf("new RBT not empty")
	}
	b := NewBounds(0x4000, 128, false)
	if err := rbt.Set(77, b); err != nil {
		t.Fatal(err)
	}
	if rbt.Len() != 1 {
		t.Fatalf("Len = %d", rbt.Len())
	}
	if got := rbt.Lookup(77); got.Base() != 0x4000 {
		t.Fatalf("lookup returned %+v", got)
	}
	if rbt.Lookup(78).Valid() {
		t.Fatalf("unset entry must be invalid")
	}
	if rbt.SizeBytes() != NumIDs*BoundsEntryBytes {
		t.Fatalf("RBT footprint %d", rbt.SizeBytes())
	}
}

func TestEntryAddr(t *testing.T) {
	if got := EntryAddr(0x7000, 3); got != 0x7000+3*BoundsEntryBytes {
		t.Fatalf("EntryAddr = %#x", got)
	}
}

func TestL1RCacheFIFO(t *testing.T) {
	c := NewL1RCache(2)
	b := NewBounds(0x1000, 64, false)
	c.Insert(1, 10, b)
	c.Insert(1, 11, b)
	if _, ok := c.Lookup(1, 10); !ok {
		t.Fatalf("entry 10 missing")
	}
	// FIFO: inserting a third entry evicts 10 (the oldest), even though it
	// was just looked up — that is what distinguishes FIFO from LRU.
	c.Insert(1, 12, b)
	if _, ok := c.Lookup(1, 10); ok {
		t.Fatalf("FIFO should have evicted the oldest entry")
	}
	if _, ok := c.Lookup(1, 11); !ok {
		t.Fatalf("entry 11 should survive")
	}
}

func TestL1RCacheKernelIsolation(t *testing.T) {
	c := NewL1RCache(4)
	c.Insert(1, 10, NewBounds(0x1000, 64, false))
	if _, ok := c.Lookup(2, 10); ok {
		t.Fatalf("entry visible to a different kernel")
	}
}

func TestL2RCacheLRU(t *testing.T) {
	c := NewL2RCache(2)
	b := NewBounds(0x1000, 64, false)
	c.Insert(1, 10, b)
	c.Insert(1, 11, b)
	c.Lookup(1, 10) // make 11 the LRU victim
	c.Insert(1, 12, b)
	if _, ok := c.Lookup(1, 11); ok {
		t.Fatalf("LRU entry should have been evicted")
	}
	if _, ok := c.Lookup(1, 10); !ok {
		t.Fatalf("recently used entry evicted")
	}
}

func TestRCacheFlush(t *testing.T) {
	l1 := NewL1RCache(4)
	l2 := NewL2RCache(4)
	b := NewBounds(0x1000, 64, false)
	l1.Insert(1, 5, b)
	l2.Insert(1, 5, b)
	l1.Flush()
	l2.Flush()
	if _, ok := l1.Lookup(1, 5); ok {
		t.Fatalf("L1 flush failed")
	}
	if _, ok := l2.Lookup(1, 5); ok {
		t.Fatalf("L2 flush failed")
	}
}

func TestRCacheStatsHitRate(t *testing.T) {
	var s RCacheStats
	if s.HitRate() != 1 {
		t.Fatalf("empty stats hit rate must be 1")
	}
	s = RCacheStats{Accesses: 10, Hits: 9}
	if s.HitRate() != 0.9 {
		t.Fatalf("hit rate %f", s.HitRate())
	}
}
