package core

import (
	"strings"
	"testing"
)

// newTestBCU builds a BCU with one installed kernel and a buffer at
// [0x1000, 0x1400) under ID 7.
func newTestBCU(mode FailureMode) (*BCU, uint64, uint16) {
	cfg := DefaultBCUConfig()
	cfg.Mode = mode
	b := NewBCU(cfg)
	const key = uint64(0xFEEDFACE)
	rbt := NewRBT()
	rbt.Set(7, NewBounds(0x1000, 0x400, false))
	rbt.Set(9, NewBounds(0x8000, 0x100, true)) // read-only buffer
	b.InstallKernel(1, key, rbt, 0x7F00_0000)
	return b, key, 7
}

func req(key uint64, id uint16, lo, hi uint64, store bool) CheckRequest {
	return CheckRequest{
		KernelID:          1,
		Pointer:           MakePointer(ClassID, EncryptID(id, key), lo),
		MinAddr:           lo,
		MaxAddr:           hi,
		IsStore:           store,
		SingleTransaction: true,
		L1DHit:            true,
	}
}

func TestBCUInBoundsPasses(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	res := b.Check(req(key, id, 0x1000, 0x1003, true))
	if !res.OK || res.Violation != nil {
		t.Fatalf("in-bounds access rejected: %+v", res)
	}
	if res.Level != ServedRBT {
		t.Fatalf("first check must come from the RBT, got %v", res.Level)
	}
	// Second check: L1 RCache hit, no stall at default latency.
	res = b.Check(req(key, id, 0x13FC, 0x13FF, false))
	if !res.OK || res.Level != ServedL1 || res.Stall != 0 {
		t.Fatalf("warm check wrong: %+v", res)
	}
}

func TestBCUDetectsOOB(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	res := b.Check(req(key, id, 0x1400, 0x1403, true)) // one byte past the end
	if res.OK || res.Violation == nil || res.Violation.Kind != ViolationOOB {
		t.Fatalf("OOB not detected: %+v", res)
	}
	if !res.DropStore {
		t.Fatalf("FailLog must drop the store")
	}
	if got := len(b.Violations()); got != 1 {
		t.Fatalf("violation log has %d entries", got)
	}
}

func TestBCUSquashesOOBLoad(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	res := b.Check(req(key, id, 0x0FF0, 0x0FF3, false))
	if res.OK || !res.SquashLoad {
		t.Fatalf("OOB load must be squashed: %+v", res)
	}
}

func TestBCUReadOnlyEnforcement(t *testing.T) {
	b, key, _ := newTestBCU(FailLog)
	// Reads of the read-only buffer pass; writes violate.
	r := req(key, 9, 0x8000, 0x8003, false)
	if res := b.Check(r); !res.OK {
		t.Fatalf("read of read-only buffer rejected: %+v", res)
	}
	r.IsStore = true
	res := b.Check(r)
	if res.OK || res.Violation.Kind != ViolationReadOnly {
		t.Fatalf("read-only store not flagged: %+v", res)
	}
}

func TestBCUInvalidIDFails(t *testing.T) {
	b, key, _ := newTestBCU(FailLog)
	res := b.Check(req(key, 12345, 0x1000, 0x1003, true)) // no such entry
	if res.OK || res.Violation.Kind != ViolationInvalidID {
		t.Fatalf("invalid ID not flagged: %+v", res)
	}
}

func TestBCUForgedPayloadFails(t *testing.T) {
	b, _, _ := newTestBCU(FailLog)
	// Attacker uses a guessed payload without knowing the key.
	r := CheckRequest{
		KernelID: 1,
		Pointer:  MakePointer(ClassID, 0x0AAA, 0x1000),
		MinAddr:  0x1000, MaxAddr: 0x1003, IsStore: true,
	}
	res := b.Check(r)
	if res.OK {
		t.Fatalf("forged pointer accepted")
	}
}

func TestBCUUnknownKernelFails(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	r := req(key, id, 0x1000, 0x1003, false)
	r.KernelID = 99 // never installed
	if res := b.Check(r); res.OK {
		t.Fatalf("check passed for kernel without installed key")
	}
}

func TestBCUFaultMode(t *testing.T) {
	b, key, id := newTestBCU(FailFault)
	res := b.Check(req(key, id, 0x2000, 0x2003, true))
	if res.OK || res.DropStore || res.SquashLoad {
		t.Fatalf("fault mode must not squash silently: %+v", res)
	}
	if _, ok := b.Faulted(); !ok {
		t.Fatalf("fault not raised")
	}
	b.ResetFault()
	if _, ok := b.Faulted(); ok {
		t.Fatalf("ResetFault failed")
	}
}

func TestBCUUnprotectedSkips(t *testing.T) {
	b, _, _ := newTestBCU(FailLog)
	res := b.Check(CheckRequest{
		KernelID: 1,
		Pointer:  MakePointer(ClassUnprotected, 0, 0xFFFF_FFFF), // wild address
		MinAddr:  0xFFFF_FFF0, MaxAddr: 0xFFFF_FFFF, IsStore: true,
	})
	if !res.OK || res.Level != ServedSkip {
		t.Fatalf("Type-1 pointer must skip checking: %+v", res)
	}
	if b.Stats.Skipped != 1 {
		t.Fatalf("skip not counted")
	}
}

func TestBCUType3OffsetCheck(t *testing.T) {
	b, _, _ := newTestBCU(FailLog)
	ptr := MakePointer(ClassSize, 10, 0x4000) // 1KB power-of-two buffer
	mk := func(minOfs, maxOfs int64, store bool) CheckRequest {
		return CheckRequest{
			KernelID: 1, Pointer: ptr,
			MinAddr: 0x4000, MaxAddr: 0x4003,
			MinOfs: minOfs, MaxOfs: maxOfs, IsStore: store,
		}
	}
	if res := b.Check(mk(0, 1023, false)); !res.OK || res.Level != ServedType3 {
		t.Fatalf("in-bounds Type-3 rejected: %+v", res)
	}
	if res := b.Check(mk(0, 1024, true)); res.OK || res.Violation.Kind != ViolationOOB {
		t.Fatalf("Type-3 overflow not caught: %+v", res)
	}
	if res := b.Check(mk(-4, 3, true)); res.OK || res.Violation.Kind != ViolationNegOfs {
		t.Fatalf("Type-3 negative offset not caught: %+v", res)
	}
	if b.Stats.Type3Checks != 3 {
		t.Fatalf("Type-3 checks = %d", b.Stats.Type3Checks)
	}
}

func TestBCUStallModel(t *testing.T) {
	// L2 RCache hit with default latencies costs exactly one bubble for a
	// single transaction hitting L1D (Fig. 12), and nothing otherwise.
	cfg := DefaultBCUConfig()
	b := NewBCU(cfg)
	key := uint64(5)
	rbt := NewRBT()
	for id := uint16(1); id <= 8; id++ {
		rbt.Set(id, NewBounds(uint64(id)*0x10000, 0x1000, false))
	}
	b.InstallKernel(1, key, rbt, 0)

	mkReq := func(id uint16, single, l1dHit bool) CheckRequest {
		base := uint64(id) * 0x10000
		return CheckRequest{
			KernelID: 1, Pointer: MakePointer(ClassID, EncryptID(id, key), base),
			MinAddr: base, MaxAddr: base + 3,
			SingleTransaction: single, L1DHit: l1dHit,
		}
	}
	// Warm all 8 into L2 (and cycle the 4-entry L1).
	for id := uint16(1); id <= 8; id++ {
		b.Check(mkReq(id, true, true))
	}
	// ID 1 is long gone from the 4-entry FIFO L1 but lives in L2.
	res := b.Check(mkReq(1, true, true))
	if res.Level != ServedL2 {
		t.Fatalf("expected L2 service, got %v", res.Level)
	}
	if res.Stall != 1 {
		t.Fatalf("L2 hit bubble = %d, want 1 (L1:1, L2:3)", res.Stall)
	}
	// Same path but hidden under a multi-transaction instruction.
	res = b.Check(mkReq(2, false, true))
	if res.Level != ServedL2 || res.Stall != 0 {
		t.Fatalf("multi-transaction check must hide the bubble: %+v", res)
	}
	// Or under an L1D miss.
	res = b.Check(mkReq(3, true, false))
	if res.Level != ServedL2 || res.Stall != 0 {
		t.Fatalf("L1D-miss check must hide the bubble: %+v", res)
	}
}

func TestBCUSlowRCacheLatencies(t *testing.T) {
	cfg := BCUConfig{L1Entries: 4, L2Entries: 64, L1Latency: 2, L2Latency: 5}
	b := NewBCU(cfg)
	key := uint64(5)
	rbt := NewRBT()
	rbt.Set(3, NewBounds(0x3000, 0x100, false))
	b.InstallKernel(1, key, rbt, 0)
	r := CheckRequest{
		KernelID: 1, Pointer: MakePointer(ClassID, EncryptID(3, key), 0x3000),
		MinAddr: 0x3000, MaxAddr: 0x3003,
		SingleTransaction: true, L1DHit: true,
	}
	b.Check(r) // RBT fill
	res := b.Check(r)
	if res.Level != ServedL1 || res.Stall != 1 {
		t.Fatalf("L1:2 must cost one bubble on an L1 hit: %+v", res)
	}
}

func TestBCURemoveKernelFlushes(t *testing.T) {
	b, key, id := newTestBCU(FailLog)
	b.Check(req(key, id, 0x1000, 0x1003, false)) // warm
	b.RemoveKernel(1)
	res := b.Check(req(key, id, 0x1000, 0x1003, false))
	if res.OK {
		t.Fatalf("check must fail after the kernel's key is removed")
	}
}

func TestEstimateHWMatchesTable3(t *testing.T) {
	rep := EstimateHW(DefaultBCUConfig())
	approx := func(got, want float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d < 1e-9 || d/want < 1e-6
	}
	if !approx(rep.TotalBytes, 909.5) {
		t.Fatalf("total SRAM %f, want 909.5", rep.TotalBytes)
	}
	if !approx(rep.TotalArea, 0.0858) {
		t.Fatalf("total area %f, want 0.0858", rep.TotalArea)
	}
	if !approx(rep.TotalLeak, 799.75) {
		t.Fatalf("total leakage %f, want 799.75", rep.TotalLeak)
	}
	if !approx(rep.TotalDyn, 203.36) {
		t.Fatalf("total dynamic %f, want 203.36", rep.TotalDyn)
	}
	// Whole-GPU figures from the paper.
	if kb := rep.TotalSRAMKB(16); kb < 14.1 || kb > 14.3 {
		t.Fatalf("Nvidia total %f KB, want ~14.2", kb)
	}
	if kb := rep.TotalSRAMKB(24); kb < 21.2 || kb > 21.4 {
		t.Fatalf("Intel total %f KB, want ~21.3", kb)
	}
}

func TestEstimateHWScalesWithEntries(t *testing.T) {
	small := EstimateHW(BCUConfig{L1Entries: 2, L2Entries: 32, L1Latency: 1, L2Latency: 3})
	big := EstimateHW(BCUConfig{L1Entries: 16, L2Entries: 256, L1Latency: 1, L2Latency: 3})
	if small.TotalArea >= big.TotalArea || small.TotalBytes >= big.TotalBytes {
		t.Fatalf("area/SRAM must grow with entries: %+v vs %+v", small, big)
	}
	// The table renders without panicking and includes every structure.
	s := big.String()
	for _, frag := range []string{"Comparators", "L1 RCache", "L2 RCache tag", "L2 RCache data", "Total"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("report missing %q:\n%s", frag, s)
		}
	}
}
