package core

// The RCache hierarchy (§5.5) caches RBT entries next to the LSU. The L1
// RCache is a tiny FIFO (default 4 entries) probed in parallel with the L1
// data cache; the L2 RCache is a 64-entry fully-associative structure with
// split tag/data arrays. Entries are tagged with both the 14-bit buffer ID
// and a kernel ID so concurrent kernels can share a core's RCaches (§6.2).

// RCacheEntry is one cached bounds record. Field widths follow §5.5: 14-bit
// ID tag, 48-bit base, 32-bit size, 1-bit read-only, 12-bit kernel ID.
type RCacheEntry struct {
	ID       uint16
	KernelID uint16
	Bounds   Bounds
	valid    bool
}

// RCacheStats counts probe outcomes for one level.
type RCacheStats struct {
	Accesses uint64
	Hits     uint64
}

// HitRate returns the hit fraction (1 if never accessed).
func (s RCacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// L1RCache is the first-in-first-out L1 RCache. Parallel tag lookup and data
// read happen in a single cycle, so an L1 hit adds no pipeline bubble.
type L1RCache struct {
	entries []RCacheEntry
	next    int // FIFO insertion cursor
	Stats   RCacheStats
}

// NewL1RCache returns an L1 RCache with n entries.
func NewL1RCache(n int) *L1RCache {
	if n <= 0 {
		n = 1
	}
	return &L1RCache{entries: make([]RCacheEntry, n)}
}

// Lookup probes the cache for (kernelID, id).
func (c *L1RCache) Lookup(kernelID, id uint16) (Bounds, bool) {
	c.Stats.Accesses++
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.ID == id && e.KernelID == kernelID {
			c.Stats.Hits++
			return e.Bounds, true
		}
	}
	return Bounds{}, false
}

// Insert adds an entry, evicting in FIFO order.
func (c *L1RCache) Insert(kernelID, id uint16, b Bounds) {
	c.entries[c.next] = RCacheEntry{ID: id, KernelID: kernelID, Bounds: b, valid: true}
	c.next = (c.next + 1) % len(c.entries)
}

// Flush invalidates all entries (kernel termination / context switch).
func (c *L1RCache) Flush() {
	for i := range c.entries {
		c.entries[i] = RCacheEntry{}
	}
	c.next = 0
}

// Entries returns the capacity.
func (c *L1RCache) Entries() int { return len(c.entries) }

// L2RCache is the fully-associative second-level RCache with LRU
// replacement, physically split into tag and data arrays (the tag array is
// probed first; the data array is read the following cycle on a match).
type L2RCache struct {
	entries []RCacheEntry
	lastUse []uint64
	tick    uint64
	Stats   RCacheStats
}

// NewL2RCache returns an L2 RCache with n entries.
func NewL2RCache(n int) *L2RCache {
	if n <= 0 {
		n = 1
	}
	return &L2RCache{entries: make([]RCacheEntry, n), lastUse: make([]uint64, n)}
}

// Lookup probes the cache for (kernelID, id).
func (c *L2RCache) Lookup(kernelID, id uint16) (Bounds, bool) {
	c.Stats.Accesses++
	c.tick++
	for i := range c.entries {
		e := &c.entries[i]
		if e.valid && e.ID == id && e.KernelID == kernelID {
			c.lastUse[i] = c.tick
			c.Stats.Hits++
			return e.Bounds, true
		}
	}
	return Bounds{}, false
}

// Insert adds an entry, evicting the least recently used victim.
func (c *L2RCache) Insert(kernelID, id uint16, b Bounds) {
	c.tick++
	victim := 0
	for i := range c.entries {
		if !c.entries[i].valid {
			victim = i
			break
		}
		if c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}
	c.entries[victim] = RCacheEntry{ID: id, KernelID: kernelID, Bounds: b, valid: true}
	c.lastUse[victim] = c.tick
}

// Flush invalidates all entries.
func (c *L2RCache) Flush() {
	for i := range c.entries {
		c.entries[i] = RCacheEntry{}
		c.lastUse[i] = 0
	}
}

// Entries returns the capacity.
func (c *L2RCache) Entries() int { return len(c.entries) }
