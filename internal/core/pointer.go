// Package core implements GPUShield, the paper's primary contribution: a
// region-based bounds-checking mechanism for GPUs. It provides the pointer
// tagging formats (Fig. 7), the per-kernel buffer-ID encryption (§5.2.4),
// the Region Bounds Table (§5.2.3), the two-level RCache hierarchy and
// Bounds-Checking Unit (§5.5), and the hardware area/power model (Table 3).
package core

import "fmt"

// Address-format constants. Virtual addresses occupy the low 48 bits; the
// two most significant bits select the pointer class (the C field of Fig. 7)
// and bits 61..48 carry the 14-bit payload: an encrypted buffer ID (Type 2)
// or log2 of the buffer size (Type 3).
const (
	AddrBits     = 48
	AddrMask     = (uint64(1) << AddrBits) - 1
	PayloadBits  = 14
	PayloadMask  = (uint64(1) << PayloadBits) - 1
	payloadShift = AddrBits
	classShift   = 62

	// NumIDs is the buffer-ID space and the RBT entry count (16384
	// direct-mapped entries indexed by a 14-bit ID).
	NumIDs = 1 << PayloadBits
)

// PtrClass is the C field of a tagged pointer.
type PtrClass uint8

// Pointer classes (Fig. 7).
const (
	ClassUnprotected PtrClass = 0 // Type 1: bounds checking statically satisfied or not required
	ClassID          PtrClass = 1 // Type 2: payload is the encrypted buffer ID
	ClassSize        PtrClass = 2 // Type 3: payload is log2 of the (power-of-two) buffer size
)

func (c PtrClass) String() string {
	switch c {
	case ClassUnprotected:
		return "unprotected"
	case ClassID:
		return "id"
	case ClassSize:
		return "size"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MakePointer assembles a tagged pointer from a class, a 14-bit payload, and
// a 48-bit virtual address.
func MakePointer(class PtrClass, payload uint16, addr uint64) uint64 {
	return uint64(class)<<classShift |
		(uint64(payload)&PayloadMask)<<payloadShift |
		(addr & AddrMask)
}

// Class extracts the pointer class.
func Class(p uint64) PtrClass { return PtrClass(p >> classShift) }

// Payload extracts the 14-bit payload.
func Payload(p uint64) uint16 { return uint16((p >> payloadShift) & PayloadMask) }

// Addr strips all metadata, returning the 48-bit virtual address. This is
// what the AGU forwards to the TLB and data cache.
func Addr(p uint64) uint64 { return p & AddrMask }

// WithAddr replaces the address bits of a tagged pointer, preserving the
// tag. Pointer arithmetic that stays within the 48-bit space preserves tags
// naturally; this helper exists for the driver and tests.
func WithAddr(p uint64, addr uint64) uint64 { return (p &^ AddrMask) | (addr & AddrMask) }

// Log2Ceil returns ceil(log2(n)) for n >= 1; it is used to compute Type-3
// size payloads for power-of-two-aligned buffers.
func Log2Ceil(n uint64) uint16 {
	if n <= 1 {
		return 0
	}
	var b uint16
	n--
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}
