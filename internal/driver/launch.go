package driver

import (
	"fmt"
	"math"
	"sort"

	"gpushield/internal/compiler"
	"gpushield/internal/core"
	"gpushield/internal/kernel"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f32from(b uint32) float32 { return math.Float32frombits(b) }

// Mode selects the protection configuration of a launch.
type Mode uint8

// Protection modes.
const (
	// ModeOff launches with no bounds checking (the paper's baseline).
	ModeOff Mode = iota
	// ModeShield enables GPUShield runtime bounds checking for every
	// protected access.
	ModeShield
	// ModeShieldStatic enables GPUShield with compiler-based static
	// filtering: statically proven accesses skip runtime checks and
	// Method-C accesses use Type-3 size-embedded pointers.
	ModeShieldStatic
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeShield:
		return "shield"
	case ModeShieldStatic:
		return "shield+static"
	}
	return "mode?"
}

// Arg is one kernel argument: either a device buffer or a scalar value.
type Arg struct {
	Buffer *Buffer
	Scalar int64
}

// BufArg and ScalarArg are convenience constructors.
func BufArg(b *Buffer) Arg  { return Arg{Buffer: b} }
func ScalarArg(v int64) Arg { return Arg{Scalar: v} }

// Launch is a fully prepared kernel launch: the driver has assigned buffer
// IDs, built the RBT in device memory, generated the per-kernel key, and
// tagged every pointer argument. The simulator consumes it directly.
type Launch struct {
	Kernel *kernel.Kernel
	Grid   int // workgroups
	Block  int // threads per workgroup
	Mode   Mode

	Args       []uint64  // argument values as the kernel sees them
	ArgBuffers []*Buffer // parallel to Args; nil for scalars

	Locals []LocalRegion // per local variable, with interleaved layout

	KernelID uint16
	Key      uint64
	RBT      *core.RBT
	RBTBase  uint64

	// LocalPtrs[i] is the tagged base pointer of local variable i, as the
	// driver would place it in constant memory.
	LocalPtrs []uint64

	// Heap is the device heap region; HeapPtr is its tagged base pointer
	// used for device-malloc results.
	Heap    *Buffer
	HeapPtr uint64

	// HeapChunkPtrs holds one tagged pointer per device-malloc chunk when
	// fine-grained heap protection is enabled (§5.7 extension); empty under
	// the default coarse-grained heap.
	HeapChunkPtrs []uint64

	// SkipCheck marks memory instructions statically proven safe
	// (ModeShieldStatic): the BCU is bypassed, modeling Type-1 pointer use.
	SkipCheck map[int]bool
	// Type3Instr marks Method-C instructions checked against the
	// size embedded in a Type-3 pointer.
	Type3Instr map[int]bool

	// Analysis is the compiler result the launch was prepared with (nil in
	// ModeOff / ModeShield).
	Analysis *compiler.Analysis

	// BufferIDs records the ID assigned to each argument buffer (argument
	// index -> ID), exposed for tests and the attack scenarios.
	BufferIDs map[int]uint16

	// NoCoalesce disables the address coalescer for this launch: every
	// active lane issues its own memory transaction. Instrumentation-based
	// checkers (CUDA-MEMCHECK model) set this to reflect their per-thread
	// check traffic.
	NoCoalesce bool

	// Mailbox, when set, is an SVM buffer the BCU writes violation records
	// into as they happen, so the host can observe memory-safety errors
	// before the kernel finishes (§5.5.2's runtime-reporting option).
	// Layout: word 0 is the record count; each record is 4 words
	// {kind, pc, addr lo32, addr hi32}.
	Mailbox *Buffer
}

// TotalThreads returns Grid*Block.
func (l *Launch) TotalThreads() int { return l.Grid * l.Block }

// launchCounter provides kernel IDs; 12 bits per the RCache metadata.
var launchCounterBits = uint16(0xFFF)

// PrepareLaunch performs the driver's kernel-setup procedure (Fig. 9 steps
// 3-4): it assigns a random-but-unique 14-bit ID to every buffer argument,
// local variable, and the heap; writes the RBT into device memory; draws
// the per-kernel encryption key; and tags pointer arguments according to
// the mode and the static analysis.
func (d *Device) PrepareLaunch(k *kernel.Kernel, grid, block int, args []Arg, mode Mode, an *compiler.Analysis) (*Launch, error) {
	if k == nil {
		return nil, fmt.Errorf("%w: nil kernel", ErrInvalidLaunch)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidLaunch, err)
	}
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("%w: %s: %d args for %d params", ErrInvalidLaunch, k.Name, len(args), len(k.Params))
	}
	if grid <= 0 || block <= 0 {
		return nil, fmt.Errorf("%w: %s: bad launch geometry grid=%d block=%d", ErrInvalidLaunch, k.Name, grid, block)
	}
	for i, p := range k.Params {
		if p.Kind == kernel.ParamBuffer && args[i].Buffer == nil {
			return nil, fmt.Errorf("%w: %s: param %d (%s) needs a buffer", ErrInvalidLaunch, k.Name, i, p.Name)
		}
		if p.Kind == kernel.ParamScalar && args[i].Buffer != nil {
			return nil, fmt.Errorf("%w: %s: param %d (%s) is scalar", ErrInvalidLaunch, k.Name, i, p.Name)
		}
	}

	l := &Launch{
		Kernel:     k,
		Grid:       grid,
		Block:      block,
		Mode:       mode,
		KernelID:   uint16(d.rng.Intn(int(launchCounterBits))) + 1,
		Key:        d.rng.Uint64(),
		RBT:        core.NewRBT(),
		SkipCheck:  make(map[int]bool),
		Type3Instr: make(map[int]bool),
		Analysis:   an,
		BufferIDs:  make(map[int]uint16),
	}

	// Random-but-unique 14-bit ID assignment (§5.2.4). An exhausted ID space
	// is reported instead of looping forever looking for a free ID.
	used := make(map[uint16]bool)
	var idErr error
	nextID := func() uint16 {
		if len(used) >= core.NumIDs-1 {
			if idErr == nil {
				idErr = fmt.Errorf("%w: all %d buffer IDs in use", ErrAllocExhausted, core.NumIDs-1)
			}
			return 0
		}
		for {
			id := uint16(d.rng.Intn(core.NumIDs-1)) + 1
			if !used[id] {
				used[id] = true
				return id
			}
		}
	}

	// Local variable regions.
	threads := grid * block
	for _, v := range k.Locals {
		l.Locals = append(l.Locals, LocalRegion{Name: v.Name, PerThread: v.Bytes, Threads: threads})
	}
	l.Locals = d.AllocLocal(l.Locals)

	// Decide per-parameter pointer classes.
	classes := d.paramClasses(k, args, mode, an)

	// Build the RBT and the tagged argument values. Arguments normally get
	// one entry each; under a constrained ID budget (§6.3) address-adjacent
	// buffers are merged into shared entries covering their union.
	l.Args = make([]uint64, len(args))
	l.ArgBuffers = make([]*Buffer, len(args))
	groups := d.groupArgs(k, args)
	for _, group := range groups {
		id := nextID()
		lo, hi := ^uint64(0), uint64(0)
		ro := true
		for _, i := range group {
			b := args[i].Buffer
			size := b.Size
			if classes[i] == core.ClassSize {
				size = b.Padded // Type-3 checks cover the power-of-two region
			}
			if b.Base < lo {
				lo = b.Base
			}
			if b.Base+size > hi {
				hi = b.Base + size
			}
			ro = ro && (b.ReadOnly || k.Params[i].ReadOnly)
		}
		if err := l.RBT.Set(id, core.NewBounds(lo, uint32(hi-lo), ro)); err != nil {
			return nil, err
		}
		for _, i := range group {
			b := args[i].Buffer
			l.ArgBuffers[i] = b
			l.BufferIDs[i] = id
			switch classes[i] {
			case core.ClassUnprotected:
				l.Args[i] = core.MakePointer(core.ClassUnprotected, 0, b.Base)
			case core.ClassSize:
				l.Args[i] = core.MakePointer(core.ClassSize, core.Log2Ceil(b.Padded), b.Base)
			default:
				l.Args[i] = core.MakePointer(core.ClassID, core.EncryptID(id, l.Key), b.Base)
			}
		}
	}
	for i, a := range args {
		if a.Buffer == nil {
			l.Args[i] = uint64(a.Scalar)
		}
	}

	// Local variables each get an RBT entry and a tagged constant-memory
	// base pointer.
	for i := range l.Locals {
		r := &l.Locals[i]
		id := nextID()
		if err := l.RBT.Set(id, core.NewBounds(r.Base, uint32(r.Size), false)); err != nil {
			return nil, err
		}
		ptr := core.MakePointer(core.ClassID, core.EncryptID(id, l.Key), r.Base)
		if mode == ModeOff {
			ptr = core.MakePointer(core.ClassUnprotected, 0, r.Base)
		}
		l.LocalPtrs = append(l.LocalPtrs, ptr)
	}

	// The heap is covered by a single coarse entry (§5.2.1) — or, with the
	// fine-grained extension enabled, by one entry per device-malloc chunk.
	l.Heap = d.Heap()
	heapID := nextID()
	if err := l.RBT.Set(heapID, core.NewBounds(l.Heap.Base, uint32(l.Heap.Size), false)); err != nil {
		return nil, err
	}
	l.HeapPtr = core.MakePointer(core.ClassID, core.EncryptID(heapID, l.Key), l.Heap.Base)
	if mode == ModeOff {
		l.HeapPtr = core.MakePointer(core.ClassUnprotected, 0, l.Heap.Base)
	}
	if d.fineGrainHeap {
		for _, ch := range d.heapChunks {
			id := nextID()
			if err := l.RBT.Set(id, core.NewBounds(ch.Base, uint32(ch.Size), false)); err != nil {
				return nil, err
			}
			ptr := core.MakePointer(core.ClassID, core.EncryptID(id, l.Key), ch.Base)
			if mode == ModeOff {
				ptr = core.MakePointer(core.ClassUnprotected, 0, ch.Base)
			}
			l.HeapChunkPtrs = append(l.HeapChunkPtrs, ptr)
		}
	}

	// Static filtering: accesses proven safe skip the BCU; Method-C
	// accesses through ClassSize params use the Type-3 path.
	if mode == ModeShieldStatic && an != nil {
		for idx := range an.StaticSafe {
			l.SkipCheck[idx] = true
		}
		for _, ai := range an.Accesses {
			if ai.Class == compiler.AccessType3 && ai.Param >= 0 &&
				ai.Space == kernel.SpaceGlobal && classes[ai.Param] == core.ClassSize {
				l.Type3Instr[ai.Instr] = true
			}
		}
	}

	if idErr != nil {
		return nil, idErr
	}

	// Serialize the RBT into device memory at its reserved (untranslated)
	// location, as the driver does at launch (§5.4).
	l.RBTBase = d.allocRBT()
	var buf [core.BoundsEntryBytes]byte
	l.RBT.Each(func(id uint16, b core.Bounds) {
		if !b.Valid() {
			return
		}
		b.EncodeTo(buf[:])
		d.Mem.WriteBytes(core.EntryAddr(l.RBTBase, id), buf[:])
		if d.rbtRecycle {
			d.rbtIDs = append(d.rbtIDs, id)
		}
	})

	// Fault injection: a registered campaign may mutate the prepared launch
	// (stale/duplicate IDs, omitted RBT setup) before the simulator sees it.
	if d.launchMutator != nil {
		d.launchMutator(l)
	}
	return l, nil
}

// groupArgs partitions the buffer-argument indices into groups that will
// share one buffer ID. Without an ID budget every buffer is its own group;
// with one, address-adjacent buffers are merged greedily (smallest gap
// first) until the launch fits (§6.3).
func (d *Device) groupArgs(k *kernel.Kernel, args []Arg) [][]int {
	var groups [][]int
	for i, a := range args {
		if a.Buffer != nil {
			groups = append(groups, []int{i})
		}
	}
	if d.idBudget <= 0 {
		return groups
	}
	// Reserve IDs for local variables and the heap entry (plus fine-grained
	// chunks) out of the same budget.
	reserved := len(k.Locals) + 1
	if d.fineGrainHeap {
		reserved += len(d.heapChunks)
	}
	allowed := d.idBudget - reserved
	if allowed < 1 {
		allowed = 1
	}
	sort.Slice(groups, func(a, b int) bool {
		return args[groups[a][0]].Buffer.Base < args[groups[b][0]].Buffer.Base
	})
	for len(groups) > allowed && len(groups) > 1 {
		// Merge the address-adjacent pair with the smallest gap.
		best := 0
		bestGap := ^uint64(0)
		for i := 0; i+1 < len(groups); i++ {
			last := args[groups[i][len(groups[i])-1]].Buffer
			next := args[groups[i+1][0]].Buffer
			gap := next.Base - last.Base
			if gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		groups[best] = append(groups[best], groups[best+1]...)
		groups = append(groups[:best+1], groups[best+2:]...)
	}
	return groups
}

// paramClasses picks the pointer class for each parameter: Type 1 when every
// access through it was statically proven, Type 3 when every runtime-checked
// access is Method C against a power-of-two-padded non-SVM buffer, Type 2
// otherwise.
func (d *Device) paramClasses(k *kernel.Kernel, args []Arg, mode Mode, an *compiler.Analysis) []core.PtrClass {
	classes := make([]core.PtrClass, len(k.Params))
	for i := range classes {
		classes[i] = core.ClassID
	}
	if mode == ModeOff {
		for i := range classes {
			classes[i] = core.ClassUnprotected
		}
		return classes
	}
	if mode != ModeShieldStatic || an == nil {
		return classes
	}
	type tally struct{ static, type3, runtime int }
	tallies := make([]tally, len(k.Params))
	unresolved := false
	for _, ai := range an.Accesses {
		if ai.Space != kernel.SpaceGlobal {
			continue
		}
		if ai.Param < 0 {
			// The access's base pointer could not be traced to a parameter
			// (laundered through memory or a select). It might dereference
			// ANY buffer, so no parameter may be demoted to an unprotected
			// Type-1 pointer.
			unresolved = true
			continue
		}
		switch ai.Class {
		case compiler.AccessStaticSafe:
			tallies[ai.Param].static++
		case compiler.AccessType3:
			tallies[ai.Param].type3++
		default:
			tallies[ai.Param].runtime++
		}
	}
	for i, p := range k.Params {
		if p.Kind != kernel.ParamBuffer {
			classes[i] = core.ClassUnprotected
			continue
		}
		t := tallies[i]
		switch {
		case unresolved:
			classes[i] = core.ClassID
		case t.runtime == 0 && t.type3 == 0:
			// Every access statically proven (or the buffer is never
			// dereferenced): Type 1.
			classes[i] = core.ClassUnprotected
		case t.runtime == 0 && t.type3 > 0 && args[i].Buffer != nil && !args[i].Buffer.SVM &&
			args[i].Buffer.Base%args[i].Buffer.Padded == 0:
			classes[i] = core.ClassSize
		default:
			classes[i] = core.ClassID
		}
	}
	return classes
}
