// Package driver models the GPU driver half of GPUShield (§5.4): device
// memory allocation, the SVM allocator whose layout gives rise to the
// Fig. 4 overflow behaviour, per-launch buffer-ID assignment and
// encryption-key generation, Region Bounds Table construction in device
// memory, and pointer tagging of kernel arguments.
package driver

import (
	"fmt"
	"math/rand"

	"gpushield/internal/core"
	"gpushield/internal/memsys"
)

// Architectural layout constants.
const (
	// PageBytes is the translation granule used by the TLBs and the
	// page-touch census (Fig. 11 counts 4 KB pages).
	PageBytes = 4096

	// SVMPageBytes is the large-page granule of the SVM/UM allocator;
	// out-of-bounds writes inside a mapped 2 MB page succeed while accesses
	// crossing into an unmapped page fault (Fig. 4, §3.1).
	SVMPageBytes = 2 << 20

	// SVMAlignBytes is the default allocation alignment of the SVM
	// allocator; overflows within the alignment padding are "suppressed"
	// (no observable side effect, Fig. 4 case 1).
	SVMAlignBytes = 512

	// Address-space carve-out (48-bit VA space).
	globalBase = uint64(0x2000_0000_0000) // cudaMalloc-style buffers
	svmBase    = uint64(0x4000_0000_0000) // SVM / unified-memory buffers
	heapBase   = uint64(0x6000_0000_0000) // device malloc heap
	localBase  = uint64(0x7000_0000_0000) // per-thread local (stack) memory
	rbtBase    = uint64(0x7F00_0000_0000) // region bounds tables
)

// Buffer is a device allocation visible to kernels.
type Buffer struct {
	Name     string
	Base     uint64 // untagged virtual base address
	Size     uint64 // requested size in bytes
	Padded   uint64 // size padded for alignment (power of two for Type 3)
	ReadOnly bool
	SVM      bool
}

// End returns one past the last requested byte.
func (b *Buffer) End() uint64 { return b.Base + b.Size }

// Device owns simulated device memory: the backing store, the set of mapped
// pages, and the allocators.
type Device struct {
	Mem *memsys.Backing

	mapped map[uint64]bool // mapped page numbers (PageBytes granule)

	globalNext uint64
	svmNext    uint64
	rbtNext    uint64
	localNext  uint64

	heap      *Buffer
	heapNext  uint64
	heapLimit uint64

	// heapChunks records device-malloc allocations; with fine-grained heap
	// protection enabled (§5.7's future-work extension) each chunk gets its
	// own RBT entry at launch instead of sharing the coarse heap region.
	heapChunks    []Buffer
	fineGrainHeap bool

	// idBudget caps the number of buffer IDs a single launch may consume
	// (0 = the full 14-bit space). When a launch would exceed it, the
	// driver merges adjacent buffers into shared entries, the §6.3
	// degradation path for hypothetical programming models with very many
	// buffers.
	idBudget int

	// RBT-region recycling (SetRBTRecycle): with it on, every prepared
	// launch reuses one table region instead of reserving a fresh 256 KB
	// slice of the RBT arena, and the previous launch's valid entries are
	// zeroed before the new table is serialized. rbtIDs remembers which IDs
	// the last launch wrote so the scrub is O(entries), not O(NumIDs).
	rbtRecycle bool
	rbtRegion  uint64
	rbtIDs     []uint16

	// launchMutator, when set, runs over every prepared launch just before
	// PrepareLaunch returns it. Fault campaigns use it to model driver bugs
	// (stale/duplicate ID assignment, omitted RBT setup).
	launchMutator func(*Launch)

	rng *rand.Rand
}

// SetLaunchMutator registers (or, with nil, clears) a hook that may mutate
// every prepared launch before the simulator sees it.
func (d *Device) SetLaunchMutator(fn func(*Launch)) { d.launchMutator = fn }

// NewDevice creates a device with an empty address space. The seed makes ID
// and key generation deterministic for reproducible experiments; use
// different seeds to observe different random ID assignments.
func NewDevice(seed int64) *Device {
	return &Device{
		Mem:        memsys.NewBacking(),
		mapped:     make(map[uint64]bool),
		globalNext: globalBase,
		svmNext:    svmBase,
		rbtNext:    rbtBase,
		localNext:  localBase,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// nextPow2 returns the smallest power of two >= v (minimum 1).
func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// mapRange marks [base, base+size) as mapped at PageBytes granularity.
func (d *Device) mapRange(base, size uint64) {
	for p := base / PageBytes; p <= (base+size-1)/PageBytes; p++ {
		d.mapped[p] = true
	}
}

// Mapped reports whether the page containing vaddr is mapped; unmapped
// accesses raise the "illegal memory access" kernel abort of Fig. 4 case 3.
func (d *Device) Mapped(vaddr uint64) bool {
	return d.mapped[vaddr/PageBytes]
}

// MappedRange reports whether every page overlapping the byte range
// [lo, hi] is mapped. Callers must guarantee lo <= hi; the LSU uses this to
// clear a whole coalesced transaction's page-fault check in one sweep when
// the warp's addresses span a small contiguous window.
func (d *Device) MappedRange(lo, hi uint64) bool {
	last := hi / PageBytes
	for p := lo / PageBytes; ; p++ {
		if !d.mapped[p] {
			return false
		}
		if p >= last {
			return true
		}
	}
}

// Malloc allocates a device buffer (cudaMalloc analogue). Buffers are
// padded to the next power of two so Type-3 size-embedded pointers are
// always constructible (§5.3.3); the padding models the fragmentation cost
// the paper accepts for that optimization.
func (d *Device) Malloc(name string, size uint64, readOnly bool) *Buffer {
	if size == 0 {
		size = 1
	}
	padded := nextPow2(size)
	base := align(d.globalNext, padded)
	if base%SVMAlignBytes != 0 {
		base = align(base, SVMAlignBytes)
	}
	d.globalNext = base + padded
	d.mapRange(base, padded)
	return &Buffer{Name: name, Base: base, Size: size, Padded: padded, ReadOnly: readOnly}
}

// MallocManaged allocates an SVM/unified-memory buffer
// (cudaMallocManaged analogue): 512 B-aligned allocations packed
// consecutively inside on-demand-mapped 2 MB pages. This layout is what
// makes the three Fig. 4 overflow outcomes observable.
func (d *Device) MallocManaged(name string, size uint64) *Buffer {
	if size == 0 {
		size = 1
	}
	base := align(d.svmNext, SVMAlignBytes)
	// Entire 2 MB pages are mapped on allocation; an allocation that spills
	// into the next 2 MB page maps that page too.
	d.svmNext = base + size
	first := base / SVMPageBytes * SVMPageBytes
	last := (base + size - 1) / SVMPageBytes * SVMPageBytes
	for p := first; p <= last; p += SVMPageBytes {
		d.mapRange(p, SVMPageBytes)
	}
	padded := align(size, SVMAlignBytes)
	return &Buffer{Name: name, Base: base, Size: size, Padded: padded, SVM: true}
}

// SetHeapLimit configures the device-malloc heap
// (cudaDeviceSetLimit(cudaLimitMallocHeapSize) analogue). GPUShield
// maintains a single coarse RBT entry covering the entire heap (§5.2.1).
func (d *Device) SetHeapLimit(size uint64) {
	if size == 0 {
		size = 8 << 20
	}
	d.heap = &Buffer{Name: "heap", Base: heapBase, Size: size, Padded: nextPow2(size)}
	d.heapNext = heapBase
	d.heapLimit = heapBase + size
	d.mapRange(heapBase, size)
}

// Heap returns the heap region, creating it with the default limit if the
// application never set one.
func (d *Device) Heap() *Buffer {
	if d.heap == nil {
		d.SetHeapLimit(0)
	}
	return d.heap
}

// DeviceMalloc carves an allocation out of the heap (in-kernel malloc
// analogue). It returns the untagged address, or an error when the heap
// limit is exhausted.
func (d *Device) DeviceMalloc(size uint64) (uint64, error) {
	d.Heap()
	base := align(d.heapNext, 16)
	if base+size > d.heapLimit {
		return 0, fmt.Errorf("%w: heap limit exceeded (%d bytes requested)", ErrAllocExhausted, size)
	}
	d.heapNext = base + size
	d.heapChunks = append(d.heapChunks, Buffer{
		Name: fmt.Sprintf("heap-chunk-%d", len(d.heapChunks)),
		Base: base, Size: size, Padded: size,
	})
	return base, nil
}

// SetFineGrainedHeap enables per-allocation heap protection, the extension
// the paper leaves as future work (§5.7): at launch, every device-malloc
// chunk receives its own buffer ID and RBT entry, so intra-heap overflows
// between chunks become detectable. The cost the paper anticipates — many
// IDs and RCache pressure under massive dynamic allocation — is real here
// too: each chunk consumes one of the 16384 IDs.
func (d *Device) SetFineGrainedHeap(on bool) { d.fineGrainHeap = on }

// HeapChunks returns the device-malloc allocation records.
func (d *Device) HeapChunks() []Buffer { return d.heapChunks }

// SetIDBudget limits how many buffer IDs one launch may use (§6.3). With a
// tight budget the driver merges address-adjacent buffer arguments into
// shared RBT entries; isolation *between merged neighbors* is lost, which
// is exactly the trade-off the paper describes for that fallback.
func (d *Device) SetIDBudget(n int) { d.idBudget = n }

// AllocLocal reserves the local-memory (off-chip stack) region for one
// kernel launch: one region per local variable sized var.Bytes × threads,
// organized so that consecutive threads' copies of a word are adjacent
// (§3.1). It returns the per-variable region buffers.
func (d *Device) AllocLocal(vars []LocalRegion) []LocalRegion {
	for i := range vars {
		size := uint64(vars[i].PerThread) * uint64(vars[i].Threads)
		base := align(d.localNext, PageBytes)
		d.localNext = base + align(size, PageBytes)
		d.mapRange(base, size)
		vars[i].Base = base
		vars[i].Size = size
	}
	return vars
}

// LocalRegion describes one local variable's launch-wide region.
type LocalRegion struct {
	Name      string
	PerThread int
	Threads   int
	Base      uint64
	Size      uint64
}

// LocalAddr computes the interleaved local-memory address for a thread's
// byte offset within a variable: consecutive threads' copies of the same
// 32-bit word are adjacent in memory.
func (r *LocalRegion) LocalAddr(thread int, offset int64) uint64 {
	word := uint64(offset) / 4
	byteIn := uint64(offset) % 4
	return r.Base + word*4*uint64(r.Threads) + uint64(thread)*4 + byteIn
}

// SetRBTRecycle selects whether launches reuse a single RBT region. The
// default (off) reserves a fresh region per prepared launch — correct for
// any lifetime pattern, including concurrent launch sets whose tables must
// coexist, but each launch materializes new backing chunks and a daemon
// serving millions of launches grows without bound. With recycling on, the
// device serializes every launch's table into the same region, scrubbing the
// previous launch's entries first, so serving traffic holds device memory
// flat. Only legal when launches are strictly serialized: the next
// PrepareLaunch invalidates the previous launch's table, so no two launches
// prepared under recycling may ever be in flight together (the service's
// per-device worker guarantees exactly that).
func (d *Device) SetRBTRecycle(on bool) { d.rbtRecycle = on }

// allocRBT reserves device memory for one kernel's Region Bounds Table —
// or, under SetRBTRecycle, returns the shared recycled region after
// scrubbing the previous occupant's entries.
func (d *Device) allocRBT() uint64 {
	if d.rbtRecycle {
		if d.rbtRegion == 0 {
			d.rbtRegion = align(d.rbtNext, PageBytes)
			d.rbtNext = d.rbtRegion + uint64(core.NumIDs*core.BoundsEntryBytes)
		}
		var zero [core.BoundsEntryBytes]byte
		for _, id := range d.rbtIDs {
			d.Mem.WriteBytes(core.EntryAddr(d.rbtRegion, id), zero[:])
		}
		d.rbtIDs = d.rbtIDs[:0]
		return d.rbtRegion
	}
	base := align(d.rbtNext, PageBytes)
	d.rbtNext = base + uint64(core.NumIDs*core.BoundsEntryBytes)
	// RBT pages are intentionally NOT entered in the normal mapping: GPU
	// cores access the table by physical address and ordinary loads that
	// touch it fault (§5.4, §6.1).
	return base
}

// CopyToDevice writes host data into a buffer (cudaMemcpy H2D analogue).
// The bounds check is two comparisons, not offset+len > Size: a hostile
// offset near 2^64 would wrap the sum back under Size (and b.Base+offset to
// an address before the buffer), turning the copy into an arbitrary write.
func (d *Device) CopyToDevice(b *Buffer, offset uint64, data []byte) error {
	if offset > b.Size || uint64(len(data)) > b.Size-offset {
		return fmt.Errorf("driver: copy of %d bytes at +%d overruns %s (%d bytes)",
			len(data), offset, b.Name, b.Size)
	}
	d.Mem.WriteBytes(b.Base+offset, data)
	return nil
}

// CopyFromDevice reads buffer contents back to the host. Same
// overflow-proof check as CopyToDevice; a negative n also lands in the
// rejection (its uint64 conversion exceeds any buffer size).
func (d *Device) CopyFromDevice(b *Buffer, offset uint64, n int) ([]byte, error) {
	if offset > b.Size || uint64(n) > b.Size-offset {
		return nil, fmt.Errorf("driver: read of %d bytes at +%d overruns %s (%d bytes)",
			n, offset, b.Name, b.Size)
	}
	return d.Mem.ReadBytes(b.Base+offset, n), nil
}

// WriteUint32/ReadUint32 and friends are convenience element accessors used
// heavily by workloads and tests.

func (d *Device) WriteUint32(b *Buffer, idx int, v uint32) {
	d.Mem.WriteUint32(b.Base+uint64(idx)*4, v)
}
func (d *Device) ReadUint32(b *Buffer, idx int) uint32 {
	return d.Mem.ReadUint32(b.Base + uint64(idx)*4)
}
func (d *Device) WriteUint64(b *Buffer, idx int, v uint64) {
	d.Mem.WriteUint64(b.Base+uint64(idx)*8, v)
}
func (d *Device) ReadUint64(b *Buffer, idx int) uint64 {
	return d.Mem.ReadUint64(b.Base + uint64(idx)*8)
}

// WriteFloat32 stores a float32 element (workloads keep 4-byte data).
func (d *Device) WriteFloat32(b *Buffer, idx int, v float32) {
	d.Mem.WriteUint32(b.Base+uint64(idx)*4, f32bits(v))
}

// ReadFloat32 loads a float32 element.
func (d *Device) ReadFloat32(b *Buffer, idx int) float32 {
	return f32from(d.Mem.ReadUint32(b.Base + uint64(idx)*4))
}
