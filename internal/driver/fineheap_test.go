package driver

import (
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
)

func heapKernel() *kernel.Kernel {
	b := kernel.NewBuilder("heapuser")
	p := b.BufferParam("scratch", false)
	_ = p
	b.Exit()
	return b.MustBuild()
}

func TestFineGrainedHeapAssignsPerChunkIDs(t *testing.T) {
	dev := NewDevice(21)
	dev.SetFineGrainedHeap(true)
	dev.SetHeapLimit(1 << 16)
	a, err := dev.DeviceMalloc(128)
	if err != nil {
		t.Fatal(err)
	}
	bAddr, err := dev.DeviceMalloc(256)
	if err != nil {
		t.Fatal(err)
	}
	scratch := dev.Malloc("scratch", 64, false)
	l, err := dev.PrepareLaunch(heapKernel(), 1, 32, []Arg{BufArg(scratch)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.HeapChunkPtrs) != 2 {
		t.Fatalf("want 2 chunk pointers, got %d", len(l.HeapChunkPtrs))
	}
	// Each chunk pointer decrypts to an RBT entry bounding exactly that
	// chunk.
	for i, want := range []struct {
		base, size uint64
	}{{a, 128}, {bAddr, 256}} {
		ptr := l.HeapChunkPtrs[i]
		if core.Addr(ptr) != want.base {
			t.Fatalf("chunk %d pointer addr %#x, want %#x", i, core.Addr(ptr), want.base)
		}
		id := core.DecryptID(core.Payload(ptr), l.Key)
		bounds := l.RBT.Lookup(id)
		if !bounds.Valid() || bounds.Base() != want.base || uint64(bounds.Size()) != want.size {
			t.Fatalf("chunk %d bounds %+v, want base %#x size %d", i, bounds, want.base, want.size)
		}
	}
	// The two chunks must have distinct IDs.
	id0 := core.DecryptID(core.Payload(l.HeapChunkPtrs[0]), l.Key)
	id1 := core.DecryptID(core.Payload(l.HeapChunkPtrs[1]), l.Key)
	if id0 == id1 {
		t.Fatalf("chunks share an ID")
	}
}

func TestCoarseHeapHasNoChunkPointers(t *testing.T) {
	dev := NewDevice(22)
	dev.SetHeapLimit(1 << 16)
	if _, err := dev.DeviceMalloc(128); err != nil {
		t.Fatal(err)
	}
	scratch := dev.Malloc("scratch", 64, false)
	l, err := dev.PrepareLaunch(heapKernel(), 1, 32, []Arg{BufArg(scratch)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.HeapChunkPtrs) != 0 {
		t.Fatalf("coarse mode should not emit chunk pointers")
	}
	if len(dev.HeapChunks()) != 1 {
		t.Fatalf("chunk record missing")
	}
}
