package driver

import "errors"

// Typed error classes the driver returns so long-lived hosts can tell a
// recoverable caller mistake from a resource-exhaustion condition.
var (
	// ErrInvalidLaunch marks a launch request the driver refused before any
	// device state changed: nil kernel, argument/parameter mismatch, bad
	// grid/block geometry, or a scalar passed where a buffer is required.
	ErrInvalidLaunch = errors.New("driver: invalid launch")

	// ErrAllocExhausted marks an allocation failure: device memory, the
	// device heap, or the 14-bit buffer-ID space ran out. The device remains
	// usable; freeing or resetting recovers.
	ErrAllocExhausted = errors.New("driver: allocation exhausted")
)
