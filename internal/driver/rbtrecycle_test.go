package driver

import (
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
)

func recycleKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder("touch")
	p := b.BufferParam("buf", false)
	b.StoreGlobal(b.AddScaled(p, b.GlobalTID(), 4), kernel.Imm(1), 4)
	return b.MustBuild()
}

// TestRBTRecycleReusesRegion pins the daemon-facing contract: under
// SetRBTRecycle every serialized launch gets the same table region, the
// previous launch's entries are scrubbed (stale IDs decode as invalid, so a
// forged pointer cannot hit leftover bounds), and the new launch's entries
// are present.
func TestRBTRecycleReusesRegion(t *testing.T) {
	dev := NewDevice(1)
	dev.SetRBTRecycle(true)
	buf := dev.Malloc("a", 4096, false)
	k := recycleKernel(t)

	l1, err := dev.PrepareLaunch(k, 1, 32, []Arg{BufArg(buf)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := dev.PrepareLaunch(k, 1, 32, []Arg{BufArg(buf)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1.RBTBase != l2.RBTBase {
		t.Fatalf("recycled launches got distinct RBT regions: %#x vs %#x", l1.RBTBase, l2.RBTBase)
	}

	// Every ID valid in l1's table but not in l2's must now decode as
	// invalid from device memory — that is the scrub the recycle depends on.
	for id := 0; id < core.NumIDs; id++ {
		was := l1.RBT.Lookup(uint16(id)).Valid()
		is := l2.RBT.Lookup(uint16(id)).Valid()
		got := core.DecodeBounds(dev.Mem.ReadBytes(core.EntryAddr(l2.RBTBase, uint16(id)), core.BoundsEntryBytes))
		if was && !is && got.Valid() {
			t.Errorf("stale entry for id %d survived the scrub: %+v", id, got)
		}
		if is && !got.Valid() {
			t.Errorf("live entry for id %d missing from device memory", id)
		}
	}
}

// TestRBTRecycleOffKeepsDistinctRegions guards the default: without
// recycling, concurrent launch sets need coexisting tables.
func TestRBTRecycleOffKeepsDistinctRegions(t *testing.T) {
	dev := NewDevice(1)
	buf := dev.Malloc("a", 4096, false)
	k := recycleKernel(t)
	l1, err := dev.PrepareLaunch(k, 1, 32, []Arg{BufArg(buf)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := dev.PrepareLaunch(k, 1, 32, []Arg{BufArg(buf)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1.RBTBase == l2.RBTBase {
		t.Fatalf("non-recycled launches share an RBT region %#x", l1.RBTBase)
	}
}
