package driver

import (
	"testing"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
)

// manyBufferKernel declares n buffer params, each stored through once.
func manyBufferKernel(n int) *kernel.Kernel {
	b := kernel.NewBuilder("manybuf")
	gtid := b.GlobalTID()
	for i := 0; i < n; i++ {
		p := b.BufferParam("buf", false)
		b.StoreGlobal(b.AddScaled(p, gtid, 4), gtid, 4)
	}
	return b.MustBuild()
}

// TestIDBudgetMergesAdjacentBuffers checks the §6.3 fallback: under a tight
// ID budget, adjacent buffers share an entry whose bounds span their union,
// while protection of the merged region's boundaries survives.
func TestIDBudgetMergesAdjacentBuffers(t *testing.T) {
	dev := NewDevice(33)
	dev.SetIDBudget(4) // locals(0) + heap(1) leaves 3 groups for 6 buffers
	const nbuf = 6
	k := manyBufferKernel(nbuf)
	args := make([]Arg, nbuf)
	for i := range args {
		args[i] = BufArg(dev.Malloc("b", 256, false))
	}
	l, err := dev.PrepareLaunch(k, 1, 64, args, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct IDs across the buffer args.
	ids := map[uint16]bool{}
	for i := 0; i < nbuf; i++ {
		ids[l.BufferIDs[i]] = true
	}
	if len(ids) > 3 {
		t.Fatalf("budget not honored: %d distinct IDs for 6 buffers", len(ids))
	}
	if len(ids) == nbuf {
		t.Fatalf("nothing merged")
	}
	// Every argument's own range stays inside its (possibly merged) entry.
	for i := 0; i < nbuf; i++ {
		b := args[i].Buffer
		bounds := l.RBT.Lookup(l.BufferIDs[i])
		if !bounds.Valid() || !bounds.Contains(b.Base, b.Base+b.Size-1) {
			t.Fatalf("arg %d not covered by its merged entry: %+v", i, bounds)
		}
	}
	// The pointer payloads still decrypt to the assigned IDs.
	for i := 0; i < nbuf; i++ {
		if core.DecryptID(core.Payload(l.Args[i]), l.Key) != l.BufferIDs[i] {
			t.Fatalf("arg %d pointer does not match its merged ID", i)
		}
	}
}

// TestNoBudgetKeepsDistinctIDs confirms the default path is untouched.
func TestNoBudgetKeepsDistinctIDs(t *testing.T) {
	dev := NewDevice(34)
	const nbuf = 6
	k := manyBufferKernel(nbuf)
	args := make([]Arg, nbuf)
	for i := range args {
		args[i] = BufArg(dev.Malloc("b", 256, false))
	}
	l, err := dev.PrepareLaunch(k, 1, 64, args, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint16]bool{}
	for i := 0; i < nbuf; i++ {
		ids[l.BufferIDs[i]] = true
	}
	if len(ids) != nbuf {
		t.Fatalf("default path merged buffers: %d IDs", len(ids))
	}
}
