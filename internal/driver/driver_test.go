package driver

import (
	"testing"
	"testing/quick"

	"gpushield/internal/core"
	"gpushield/internal/kernel"
)

func TestMallocAlignmentInvariants(t *testing.T) {
	dev := NewDevice(1)
	f := func(size uint16) bool {
		sz := uint64(size)
		if sz == 0 {
			sz = 1
		}
		b := dev.Malloc("b", sz, false)
		// Padded is the next power of two and the base is aligned to it,
		// so Type-3 size-embedded pointers are always constructible.
		if b.Padded < b.Size || b.Padded&(b.Padded-1) != 0 {
			return false
		}
		if b.Base%b.Padded != 0 && b.Padded > SVMAlignBytes {
			return false
		}
		// Every allocated byte is mapped.
		return dev.Mapped(b.Base) && dev.Mapped(b.Base+b.Size-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMallocNoOverlap(t *testing.T) {
	dev := NewDevice(2)
	var prev *Buffer
	for i := 0; i < 100; i++ {
		b := dev.Malloc("b", uint64(i*37+1), false)
		if prev != nil && b.Base < prev.Base+prev.Padded {
			t.Fatalf("allocation %d overlaps its predecessor", i)
		}
		prev = b
	}
}

func TestMallocManagedLayout(t *testing.T) {
	dev := NewDevice(3)
	a := dev.MallocManaged("A", 64)
	b := dev.MallocManaged("B", 64)
	if a.Base%SVMAlignBytes != 0 || b.Base%SVMAlignBytes != 0 {
		t.Fatalf("SVM allocations must be 512B aligned: %#x %#x", a.Base, b.Base)
	}
	if b.Base-a.Base != SVMAlignBytes {
		t.Fatalf("consecutive small SVM buffers must land in adjacent 512B slots: gap %d", b.Base-a.Base)
	}
	// The whole 2MB page is mapped; the next one is not.
	if !dev.Mapped(a.Base + SVMPageBytes - 1) {
		t.Fatalf("2MB page not fully mapped")
	}
	if dev.Mapped(a.Base + SVMPageBytes) {
		t.Fatalf("next 2MB page must stay unmapped until allocated into")
	}
}

func TestHeapAllocator(t *testing.T) {
	dev := NewDevice(4)
	dev.SetHeapLimit(1024)
	a, err := dev.DeviceMalloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.DeviceMalloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a || b-a < 100 {
		t.Fatalf("heap chunks overlap: %#x %#x", a, b)
	}
	if _, err := dev.DeviceMalloc(2048); err == nil {
		t.Fatalf("heap limit not enforced")
	}
	heap := dev.Heap()
	if a < heap.Base || a >= heap.Base+heap.Size {
		t.Fatalf("chunk outside heap region")
	}
}

func TestLocalRegionInterleaving(t *testing.T) {
	r := LocalRegion{Name: "v", PerThread: 16, Threads: 64, Base: 0x1000, Size: 16 * 64}
	// Consecutive threads' copies of the same word are adjacent (§3.1).
	a0 := r.LocalAddr(0, 0)
	a1 := r.LocalAddr(1, 0)
	if a1-a0 != 4 {
		t.Fatalf("threads not word-interleaved: %#x %#x", a0, a1)
	}
	// Consecutive words of one thread are Threads*4 apart.
	w0 := r.LocalAddr(5, 0)
	w1 := r.LocalAddr(5, 4)
	if w1-w0 != 4*64 {
		t.Fatalf("word stride wrong: %d", w1-w0)
	}
	// All in-bounds accesses stay inside the region...
	for thr := 0; thr < 64; thr++ {
		for off := int64(0); off < 16; off += 4 {
			a := r.LocalAddr(thr, off)
			if a < r.Base || a+4 > r.Base+r.Size {
				t.Fatalf("in-bounds access escapes region: thr %d off %d -> %#x", thr, off, a)
			}
		}
	}
	// ...and the first out-of-bounds offset escapes it (that is what makes
	// region-granular checking effective for local variables).
	if a := r.LocalAddr(0, 16); a < r.Base+r.Size {
		t.Fatalf("overflow offset stayed in region: %#x", a)
	}
}

func TestCopyBounds(t *testing.T) {
	dev := NewDevice(5)
	b := dev.Malloc("b", 64, false)
	if err := dev.CopyToDevice(b, 60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatalf("overrunning copy accepted")
	}
	if err := dev.CopyToDevice(b, 60, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("exact-fit copy rejected: %v", err)
	}
	got, err := dev.CopyFromDevice(b, 60, 4)
	if err != nil || got[3] != 4 {
		t.Fatalf("read back: %v %v", got, err)
	}
	if _, err := dev.CopyFromDevice(b, 63, 2); err == nil {
		t.Fatalf("overrunning read accepted")
	}
}

// TestCopyBoundsOverflow: offsets near 2^64 must be rejected, not wrap
// offset+len back under Size and turn the copy into an arbitrary
// read/write before the buffer — in a shared address space that is another
// tenant's memory.
func TestCopyBoundsOverflow(t *testing.T) {
	dev := NewDevice(5)
	b := dev.Malloc("b", 64, false)
	huge := ^uint64(0) - 3 // offset + 4 wraps to 0
	if err := dev.CopyToDevice(b, huge, []byte{1, 2, 3, 4}); err == nil {
		t.Fatalf("wrapping write offset accepted")
	}
	if _, err := dev.CopyFromDevice(b, huge, 4); err == nil {
		t.Fatalf("wrapping read offset accepted")
	}
	// Just past the end, and far past it, with zero/small lengths.
	if err := dev.CopyToDevice(b, 65, nil); err == nil {
		t.Fatalf("out-of-range offset with empty payload accepted")
	}
	if _, err := dev.CopyFromDevice(b, 0, -1); err == nil {
		t.Fatalf("negative read length accepted")
	}
}

func TestFloat32Accessors(t *testing.T) {
	dev := NewDevice(6)
	b := dev.Malloc("f", 64, false)
	dev.WriteFloat32(b, 3, 1.5)
	if got := dev.ReadFloat32(b, 3); got != 1.5 {
		t.Fatalf("float round trip: %f", got)
	}
}

// simpleKernel builds a two-buffer kernel with one indirect access so the
// launch exercises both ClassID pointers and scalar args.
func simpleKernel() *kernel.Kernel {
	b := kernel.NewBuilder("simple")
	pin := b.BufferParam("in", true)
	pout := b.BufferParam("out", false)
	pn := b.ScalarParam("n")
	gtid := b.GlobalTID()
	g := b.SetLT(gtid, pn)
	b.If(g, func() {
		idx := b.LoadGlobal(b.AddScaled(pin, gtid, 4), 4)
		v := b.LoadGlobal(b.AddScaled(pin, idx, 4), 4)
		b.StoreGlobal(b.AddScaled(pout, gtid, 4), v, 4)
	})
	return b.MustBuild()
}

func TestPrepareLaunchAssignsUniqueRandomIDs(t *testing.T) {
	dev := NewDevice(7)
	k := simpleKernel()
	in := dev.Malloc("in", 1024, true)
	out := dev.Malloc("out", 1024, false)
	args := []Arg{BufArg(in), BufArg(out), ScalarArg(10)}

	l1, err := dev.PrepareLaunch(k, 2, 64, args, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := dev.PrepareLaunch(k, 2, 64, args, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1.BufferIDs[0] == l1.BufferIDs[1] {
		t.Fatalf("buffer IDs must be unique within a launch")
	}
	if l1.Key == l2.Key {
		t.Fatalf("per-kernel keys must differ across launches")
	}
	if l1.BufferIDs[0] == l2.BufferIDs[0] && l1.BufferIDs[1] == l2.BufferIDs[1] {
		t.Fatalf("ID assignment should be randomized across launches")
	}
}

func TestPrepareLaunchTagsPointers(t *testing.T) {
	dev := NewDevice(8)
	k := simpleKernel()
	in := dev.Malloc("in", 1024, true)
	out := dev.Malloc("out", 1024, false)
	args := []Arg{BufArg(in), BufArg(out), ScalarArg(10)}

	// Off: plain addresses.
	l, err := dev.PrepareLaunch(k, 1, 64, args, ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if core.Class(l.Args[0]) != core.ClassUnprotected || core.Addr(l.Args[0]) != in.Base {
		t.Fatalf("off-mode pointer wrong: %#x", l.Args[0])
	}

	// Shield: encrypted-ID pointers that decrypt to the assigned ID.
	l, err = dev.PrepareLaunch(k, 1, 64, args, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p := l.Args[i]
		if core.Class(p) != core.ClassID {
			t.Fatalf("arg %d class = %v", i, core.Class(p))
		}
		if got := core.DecryptID(core.Payload(p), l.Key); got != l.BufferIDs[i] {
			t.Fatalf("arg %d payload decrypts to %d, want %d", i, got, l.BufferIDs[i])
		}
	}
	if l.Args[2] != 10 {
		t.Fatalf("scalar arg mangled: %d", l.Args[2])
	}
}

func TestPrepareLaunchBuildsRBTInDeviceMemory(t *testing.T) {
	dev := NewDevice(9)
	k := simpleKernel()
	in := dev.Malloc("in", 1024, true)
	out := dev.Malloc("out", 1024, false)
	l, err := dev.PrepareLaunch(k, 1, 64, []Arg{BufArg(in), BufArg(out), ScalarArg(5)}, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized entry must decode to the same bounds the architectural
	// RBT holds, for every assigned ID.
	for argIdx, id := range l.BufferIDs {
		want := l.RBT.Lookup(id)
		raw := dev.Mem.ReadBytes(core.EntryAddr(l.RBTBase, id), core.BoundsEntryBytes)
		got := core.DecodeBounds(raw)
		if got != want {
			t.Fatalf("arg %d: serialized bounds %+v != architectural %+v", argIdx, got, want)
		}
		if !got.Valid() {
			t.Fatalf("arg %d: serialized entry invalid", argIdx)
		}
	}
	// The in buffer is read-only (declared in the kernel signature).
	if !l.RBT.Lookup(l.BufferIDs[0]).ReadOnly() {
		t.Fatalf("read-only attribute lost")
	}
	// The heap gets its own valid entry reachable through HeapPtr.
	heapID := core.DecryptID(core.Payload(l.HeapPtr), l.Key)
	if !l.RBT.Lookup(heapID).Valid() {
		t.Fatalf("heap entry missing")
	}
}

func TestPrepareLaunchLocals(t *testing.T) {
	b := kernel.NewBuilder("withlocal")
	v := b.Local("scratch", 32)
	b.StoreLocal(v, kernel.Imm(0), kernel.Imm(1), 4)
	k := b.MustBuild()
	dev := NewDevice(10)
	l, err := dev.PrepareLaunch(k, 2, 64, nil, ModeShield, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Locals) != 1 || len(l.LocalPtrs) != 1 {
		t.Fatalf("local region not materialized")
	}
	r := l.Locals[0]
	if r.Size != 32*128 {
		t.Fatalf("region size %d, want %d", r.Size, 32*128)
	}
	id := core.DecryptID(core.Payload(l.LocalPtrs[0]), l.Key)
	bounds := l.RBT.Lookup(id)
	if !bounds.Valid() || bounds.Base() != r.Base || uint64(bounds.Size()) != r.Size {
		t.Fatalf("local bounds wrong: %+v vs region %+v", bounds, r)
	}
}

func TestPrepareLaunchValidation(t *testing.T) {
	dev := NewDevice(11)
	k := simpleKernel()
	in := dev.Malloc("in", 64, true)
	out := dev.Malloc("out", 64, false)
	if _, err := dev.PrepareLaunch(k, 1, 64, []Arg{BufArg(in)}, ModeShield, nil); err == nil {
		t.Fatalf("arg-count mismatch accepted")
	}
	if _, err := dev.PrepareLaunch(k, 0, 64, []Arg{BufArg(in), BufArg(out), ScalarArg(1)}, ModeShield, nil); err == nil {
		t.Fatalf("zero grid accepted")
	}
	if _, err := dev.PrepareLaunch(k, 1, 64, []Arg{ScalarArg(1), BufArg(out), ScalarArg(1)}, ModeShield, nil); err == nil {
		t.Fatalf("scalar passed for buffer param accepted")
	}
	if _, err := dev.PrepareLaunch(k, 1, 64, []Arg{BufArg(in), BufArg(out), BufArg(in)}, ModeShield, nil); err == nil {
		t.Fatalf("buffer passed for scalar param accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeOff.String() != "off" || ModeShield.String() != "shield" || ModeShieldStatic.String() != "shield+static" {
		t.Fatalf("mode strings wrong")
	}
}
