package baselines

// Per-launch time models for the three software tools (Fig. 19). All times
// are in GPU core cycles for one kernel invocation; an application's total
// is Invocations × per-launch time, so the factors below are also the
// app-level overhead factors.

// MemcheckFactor is the CUDA-MEMCHECK overhead: the instrumented kernel's
// simulated runtime (inflated instruction count, per-thread check traffic)
// plus the per-launch JIT/synchronization cost.
func MemcheckFactor(baseCycles, instrumentedCycles uint64) float64 {
	if baseCycles == 0 {
		return 1
	}
	return (float64(instrumentedCycles) + MemcheckLaunchCycles) / float64(baseCycles)
}

// ClArmorFactor is the clArmor overhead: the unmodified kernel plus a
// device-synchronize and the canary-check kernel after every launch.
func ClArmorFactor(baseCycles, checkCycles uint64) float64 {
	if baseCycles == 0 {
		return 1
	}
	return (float64(baseCycles) + float64(checkCycles) + ClArmorSyncCycles) / float64(baseCycles)
}

// GMODFactor is the GMOD overhead: guard-kernel memory contention while the
// kernel runs plus the per-launch constructor/destructor work.
func GMODFactor(baseCycles uint64) float64 {
	if baseCycles == 0 {
		return 1
	}
	return (float64(baseCycles)*(1+GMODContention) + GMODCtorCycles) / float64(baseCycles)
}
