package baselines

import (
	"fmt"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// CanaryWord is the secret value written into allocation padding. clArmor
// and GMOD both detect out-of-bounds *writes* by noticing a changed canary;
// reads and far out-of-bounds accesses that jump over the canary escape
// them (§4.1) — a limitation the attack tests demonstrate.
const CanaryWord = uint32(0xD3ADC0DE)

// CanaryWords is how many 4-byte canary words guard the end of each buffer.
const CanaryWords = 16

// PlantCanaries writes canary words into the padding after each buffer's
// payload (clArmor does this by intercepting allocation calls). Buffers
// whose padding is too small for the full canary get as much as fits.
func PlantCanaries(dev *driver.Device, bufs []*driver.Buffer) {
	for _, b := range bufs {
		n := canaryCount(b)
		for i := 0; i < n; i++ {
			dev.Mem.WriteUint32(b.Base+b.Size+uint64(4*i), CanaryWord)
		}
	}
}

func canaryCount(b *driver.Buffer) int {
	pad := int(b.Padded-b.Size) / 4
	if pad > CanaryWords {
		pad = CanaryWords
	}
	return pad
}

// CheckCanariesHost scans the canaries from the host (GMOD's guard thread
// does this continuously; clArmor does it after device synchronization)
// and returns the buffers whose canary was overwritten.
func CheckCanariesHost(dev *driver.Device, bufs []*driver.Buffer) []string {
	var corrupted []string
	for _, b := range bufs {
		for i := 0; i < canaryCount(b); i++ {
			if dev.Mem.ReadUint32(b.Base+b.Size+uint64(4*i)) != CanaryWord {
				corrupted = append(corrupted, b.Name)
				break
			}
		}
	}
	return corrupted
}

// BuildCanaryCheckKernel builds the device-side canary verification kernel
// clArmor launches after each monitored kernel: one thread per canary word,
// atomically accumulating mismatches into an error counter.
func BuildCanaryCheckKernel(bufs []*driver.Buffer) (*kernel.Kernel, []driver.Arg, error) {
	if len(bufs) == 0 {
		return nil, nil, fmt.Errorf("baselines: no buffers to check")
	}
	b := kernel.NewBuilder("clarmor-check")
	var params []kernel.Operand
	for _, buf := range bufs {
		params = append(params, b.BufferParam(buf.Name, false))
	}
	perr := b.BufferParam("__errors", false)
	cw := CanaryWord // via a variable: the raw constant overflows int32
	canaryImm := kernel.Imm(int64(int32(cw)))
	tid := b.TID()
	inCanary := b.SetLT(tid, kernel.Imm(CanaryWords))
	b.If(inCanary, func() {
		for i, buf := range bufs {
			n := canaryCount(buf)
			if n == 0 {
				continue
			}
			mine := b.SetLT(tid, kernel.Imm(int64(n)))
			b.If(mine, func() {
				off := b.Add(kernel.Imm(int64(buf.Size)), b.Mul(tid, kernel.Imm(4)))
				v := b.LoadGlobalOfs(params[i], off, 4)
				// 4-byte loads sign-extend; compare against the
				// sign-extended canary constant.
				bad := b.SetNE(v, canaryImm)
				b.If(bad, func() {
					b.AtomAddGlobal(b.AddScaled(perr, kernel.Imm(0), 4), kernel.Imm(1), 4)
				})
			})
		}
	})
	k, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	args := make([]driver.Arg, 0, len(bufs)+1)
	for _, buf := range bufs {
		args = append(args, driver.BufArg(buf))
	}
	return k, args, nil
}
