// Package baselines implements the software memory-safety tools GPUShield
// is compared against in Fig. 19: a CUDA-MEMCHECK-style binary
// instrumentation model, the clArmor canary checker, and the GMOD guard-
// thread monitor. Each combines a faithful mechanism (instrumented kernels,
// canary words in allocation padding, polling checks) with a documented
// cost model for the host-side parts (JIT, synchronization, per-launch
// constructor/destructor work) that cannot be expressed as simulated
// instructions.
package baselines

import (
	"gpushield/internal/driver"
	"gpushield/internal/kernel"
)

// Tool cost-model constants, in GPU core cycles. The values are calibrated
// against the tools' published behaviour (NVBit-class JIT cost, clArmor's
// per-launch device synchronization, GMOD's per-launch ctor/dtor with
// device allocation) at this repository's scaled-down problem sizes; see
// EXPERIMENTS.md for the calibration notes.
const (
	// MemcheckLaunchCycles is the per-launch JIT/patching and tool
	// synchronization cost of instrumentation-based checkers.
	MemcheckLaunchCycles = 8000
	// ClArmorSyncCycles is clArmor's per-launch host synchronization (it
	// must drain the device before reading canaries).
	ClArmorSyncCycles = 8000
	// GMODCtorCycles is GMOD's per-launch constructor/destructor work.
	GMODCtorCycles = 3000
	// GMODContention is the fraction of kernel time lost to the concurrent
	// guard kernel's memory traffic.
	GMODContention = 0.05
)

// shadowWords is the size of the memcheck shadow table in 4-byte words
// (power of two; addresses hash into it).
const shadowWords = 1 << 14

// InstrumentMemcheck rewrites a kernel the way an instrumentation-based
// checker does: every global-memory instruction is preceded by an
// inline check sequence — address hashing, two shadow-table loads, and
// range comparisons — and the rewritten kernel is marked for uncoalesced
// (per-thread) check traffic. The rewritten kernel takes one extra buffer
// parameter: the shadow table.
func InstrumentMemcheck(k *kernel.Kernel) *kernel.Kernel {
	nk := &kernel.Kernel{
		Name:        k.Name + "+memcheck",
		Params:      append(append([]kernel.ParamSpec(nil), k.Params...), kernel.ParamSpec{Name: "__shadow", Kind: kernel.ParamBuffer, ReadOnly: true}),
		Locals:      append([]kernel.LocalVar(nil), k.Locals...),
		SharedBytes: k.SharedBytes,
		NumRegs:     k.NumRegs + 4,
	}
	shadowParam := len(k.Params)
	// Scratch registers for the instrumentation sequence.
	rHash := k.NumRegs
	rMeta0 := k.NumRegs + 1
	rMeta1 := k.NumRegs + 2
	rCmp := k.NumRegs + 3

	// The inline check sequence models the tool's patched-in trampoline:
	// spill/setup, a two-level metadata walk (segment table then allocation
	// record), range comparisons, and state restore. Sequence length
	// follows the SASS trampolines CUDA-MEMCHECK injects (~16
	// instructions + 4 metadata loads per memory access).
	buildSeq := func(addr kernel.Operand) []kernel.Instr {
		return []kernel.Instr{
			// trampoline entry: save flags / compute lane slot
			{Op: kernel.OpMov, Dst: rCmp, Src: [3]kernel.Operand{addr}},
			{Op: kernel.OpShr, Dst: rHash, Src: [3]kernel.Operand{addr, kernel.Imm(20)}},
			{Op: kernel.OpAnd, Dst: rHash, Src: [3]kernel.Operand{kernel.Reg(rHash), kernel.Imm(shadowWords - 1)}},
			{Op: kernel.OpMul, Dst: rHash, Src: [3]kernel.Operand{kernel.Reg(rHash), kernel.Imm(4)}},
			// level-1 metadata: segment descriptor
			{Op: kernel.OpLd, Dst: rMeta0, Src: [3]kernel.Operand{kernel.Param(shadowParam), kernel.Reg(rHash)}, Space: kernel.SpaceGlobal, Bytes: 4},
			{Op: kernel.OpAnd, Dst: rMeta0, Src: [3]kernel.Operand{kernel.Reg(rMeta0), kernel.Imm(shadowWords - 1)}},
			{Op: kernel.OpMul, Dst: rMeta0, Src: [3]kernel.Operand{kernel.Reg(rMeta0), kernel.Imm(4)}},
			{Op: kernel.OpLd, Dst: rMeta1, Src: [3]kernel.Operand{kernel.Param(shadowParam), kernel.Reg(rMeta0)}, Space: kernel.SpaceGlobal, Bytes: 4},
			// level-2 metadata: allocation record (base, size)
			{Op: kernel.OpShr, Dst: rCmp, Src: [3]kernel.Operand{addr, kernel.Imm(12)}},
			{Op: kernel.OpAnd, Dst: rCmp, Src: [3]kernel.Operand{kernel.Reg(rCmp), kernel.Imm(shadowWords - 1)}},
			{Op: kernel.OpMul, Dst: rCmp, Src: [3]kernel.Operand{kernel.Reg(rCmp), kernel.Imm(4)}},
			{Op: kernel.OpLd, Dst: rMeta0, Src: [3]kernel.Operand{kernel.Param(shadowParam), kernel.Reg(rCmp)}, Space: kernel.SpaceGlobal, Bytes: 4},
			{Op: kernel.OpLd, Dst: rMeta1, Src: [3]kernel.Operand{kernel.Param(shadowParam), kernel.Reg(rCmp)}, Space: kernel.SpaceGlobal, Bytes: 4},
			// range comparisons and verdict combine
			{Op: kernel.OpSetGE, Dst: rCmp, Src: [3]kernel.Operand{addr, kernel.Reg(rMeta0)}},
			{Op: kernel.OpSetLE, Dst: rHash, Src: [3]kernel.Operand{addr, kernel.Reg(rMeta1)}},
			{Op: kernel.OpAnd, Dst: rCmp, Src: [3]kernel.Operand{kernel.Reg(rCmp), kernel.Reg(rHash)}},
			{Op: kernel.OpXor, Dst: rHash, Src: [3]kernel.Operand{kernel.Reg(rHash), kernel.Reg(rCmp)}},
			// trampoline exit: restore
			{Op: kernel.OpMov, Dst: rHash, Src: [3]kernel.Operand{kernel.Reg(rCmp)}},
		}
	}
	seqLen := len(buildSeq(kernel.Imm(0)))

	// First pass: compute the new index of every old instruction.
	newIndex := make([]int, len(k.Code)+1)
	pos := 0
	for i, in := range k.Code {
		newIndex[i] = pos
		if instrumented(in) {
			pos += seqLen
		}
		pos++
	}
	newIndex[len(k.Code)] = pos

	// Second pass: emit.
	for _, in := range k.Code {
		if instrumented(in) {
			for _, s := range buildSeq(in.Src[0]) {
				s.Pred, s.PNeg = in.Pred, in.PNeg
				nk.Code = append(nk.Code, s)
			}
		}
		// Remap control-flow targets.
		if in.Op.IsBranch() {
			in.Label = newIndex[in.Label]
			if in.Op == kernel.OpBraDiv {
				in.Reconv = newIndex[in.Reconv]
			}
		}
		nk.Code = append(nk.Code, in)
	}
	return nk
}

func instrumented(in kernel.Instr) bool {
	return in.Op.IsMemory() && in.Space == kernel.SpaceGlobal
}

// NewShadowTable allocates and fills the memcheck shadow table on a device.
func NewShadowTable(dev *driver.Device) *driver.Buffer {
	b := dev.Malloc("memcheck-shadow", shadowWords*4, true)
	// Plausible metadata contents; the timing model only needs the loads.
	for i := 0; i < shadowWords; i++ {
		dev.WriteUint32(b, i, uint32(i))
	}
	return b
}
