package baselines

import (
	"testing"

	"gpushield/internal/driver"
	"gpushield/internal/kernel"
	"gpushield/internal/sim"
)

// buildSaxpy returns y[i] = a*x[i] + y[i] with a loop and a divergent
// guard, exercising branch-target remapping in the instrumenter.
func buildSaxpy() *kernel.Kernel {
	b := kernel.NewBuilder("saxpy")
	px := b.BufferParam("x", true)
	py := b.BufferParam("y", false)
	pn := b.ScalarParam("n")
	gtid := b.GlobalTID()
	g := b.SetLT(gtid, pn)
	b.If(g, func() {
		b.ForRange(kernel.Imm(0), kernel.Imm(4), kernel.Imm(1), func(i kernel.Operand) {
			idx := b.Mad(gtid, kernel.Imm(4), i)
			xv := b.LoadGlobal(b.AddScaled(px, idx, 4), 4)
			yv := b.LoadGlobal(b.AddScaled(py, idx, 4), 4)
			b.StoreGlobal(b.AddScaled(py, idx, 4), b.Add(b.Mul(xv, kernel.Imm(3)), yv), 4)
		})
	})
	return b.MustBuild()
}

func TestInstrumentedKernelValidates(t *testing.T) {
	k := buildSaxpy()
	ik := InstrumentMemcheck(k)
	if err := ik.Validate(); err != nil {
		t.Fatalf("instrumented kernel invalid: %v", err)
	}
	if ik.NumRegs <= k.NumRegs {
		t.Fatalf("instrumentation needs scratch registers")
	}
	if len(ik.Params) != len(k.Params)+1 {
		t.Fatalf("shadow-table parameter missing")
	}
	if len(ik.Code) <= len(k.Code) {
		t.Fatalf("no instructions inserted")
	}
}

func TestInstrumentationInflatesMemoryOps(t *testing.T) {
	k := buildSaxpy()
	ik := InstrumentMemcheck(k)
	orig := len(k.MemOps())
	instr := len(ik.MemOps())
	// Each global access gains 4 metadata loads.
	if instr != orig+4*orig {
		t.Fatalf("memory ops: %d -> %d, want %d", orig, instr, orig+4*orig)
	}
}

// runSaxpy executes a saxpy-shaped kernel and returns y's contents.
func runSaxpy(t *testing.T, k *kernel.Kernel, extraShadow bool) []uint32 {
	t.Helper()
	const n = 64
	dev := driver.NewDevice(1)
	x := dev.Malloc("x", n*4*4, true)
	y := dev.Malloc("y", n*4*4, false)
	for i := 0; i < n*4; i++ {
		dev.WriteUint32(x, i, uint32(i))
		dev.WriteUint32(y, i, uint32(2*i))
	}
	args := []driver.Arg{driver.BufArg(x), driver.BufArg(y), driver.ScalarArg(n)}
	if extraShadow {
		args = append(args, driver.BufArg(NewShadowTable(dev)))
	}
	l, err := dev.PrepareLaunch(k, 2, 32, args, driver.ModeOff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if extraShadow {
		l.NoCoalesce = true
	}
	st, err := sim.New(sim.NvidiaConfig(), dev).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted {
		t.Fatalf("aborted: %s", st.AbortMsg)
	}
	out := make([]uint32, n*4)
	for i := range out {
		out[i] = dev.ReadUint32(y, i)
	}
	return out
}

// TestInstrumentationPreservesSemantics is the key property of the
// memcheck model: the instrumented kernel computes exactly the same result
// as the original.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	k := buildSaxpy()
	want := runSaxpy(t, k, false)
	got := runSaxpy(t, InstrumentMemcheck(k), true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestInstrumentationSlowsExecution verifies the model's purpose: the
// instrumented kernel must be substantially slower.
func TestInstrumentationSlowsExecution(t *testing.T) {
	k := buildSaxpy()
	run := func(kk *kernel.Kernel, shadow bool) uint64 {
		const n = 64
		dev := driver.NewDevice(2)
		x := dev.Malloc("x", n*4*4, true)
		y := dev.Malloc("y", n*4*4, false)
		args := []driver.Arg{driver.BufArg(x), driver.BufArg(y), driver.ScalarArg(n)}
		if shadow {
			args = append(args, driver.BufArg(NewShadowTable(dev)))
		}
		l, err := dev.PrepareLaunch(kk, 2, 32, args, driver.ModeOff, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.NoCoalesce = shadow
		st, err := sim.New(sim.NvidiaConfig(), dev).Run(l)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles()
	}
	base := run(k, false)
	instr := run(InstrumentMemcheck(k), true)
	if instr < 2*base {
		t.Fatalf("instrumented run only %dx slower (%d vs %d cycles)", instr/base, instr, base)
	}
}

func TestCanaryPlantAndCheck(t *testing.T) {
	dev := driver.NewDevice(3)
	a := dev.Malloc("a", 100, false) // padded to 128: 28 bytes of padding
	b := dev.Malloc("b", 256, false)
	bufs := []*driver.Buffer{a, b}
	PlantCanaries(dev, bufs)
	if got := CheckCanariesHost(dev, bufs); len(got) != 0 {
		t.Fatalf("clean canaries reported corrupted: %v", got)
	}
	// Overwrite a's first canary word.
	dev.Mem.WriteUint32(a.Base+a.Size, 0)
	got := CheckCanariesHost(dev, bufs)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("corruption not localized: %v", got)
	}
}

func TestCanaryCheckKernelDetectsCorruption(t *testing.T) {
	dev := driver.NewDevice(4)
	a := dev.Malloc("a", 96, false)
	bufs := []*driver.Buffer{a}
	PlantCanaries(dev, bufs)
	k, args, err := BuildCanaryCheckKernel(bufs)
	if err != nil {
		t.Fatal(err)
	}
	errBuf := dev.Malloc("errors", 64, false)
	args = append(args, driver.BufArg(errBuf))

	run := func() uint32 {
		l, err := dev.PrepareLaunch(k, 1, 64, args, driver.ModeOff, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.New(sim.NvidiaConfig(), dev).Run(l); err != nil {
			t.Fatal(err)
		}
		return dev.ReadUint32(errBuf, 0)
	}
	if n := run(); n != 0 {
		t.Fatalf("false positives: %d", n)
	}
	dev.Mem.WriteUint32(a.Base+a.Size+4, 0xBAD)
	if n := run(); n == 0 {
		t.Fatalf("corrupted canary not detected by the check kernel")
	}
}

func TestCanaryCheckKernelNeedsBuffers(t *testing.T) {
	if _, _, err := BuildCanaryCheckKernel(nil); err == nil {
		t.Fatalf("empty buffer list accepted")
	}
}

func TestToolFactors(t *testing.T) {
	if f := MemcheckFactor(1000, 10000); f != (10000.0+MemcheckLaunchCycles)/1000.0 {
		t.Fatalf("memcheck factor %f", f)
	}
	if f := ClArmorFactor(1000, 500); f != (1000.0+500.0+ClArmorSyncCycles)/1000.0 {
		t.Fatalf("clarmor factor %f", f)
	}
	want := (1000*(1+GMODContention) + GMODCtorCycles) / 1000
	if f := GMODFactor(1000); f != want {
		t.Fatalf("gmod factor %f, want %f", f, want)
	}
	// Degenerate inputs.
	if MemcheckFactor(0, 5) != 1 || ClArmorFactor(0, 5) != 1 || GMODFactor(0) != 1 {
		t.Fatalf("zero baselines must yield factor 1")
	}
	// The shorter the kernel, the worse the tools — the Fig. 19
	// streamcluster effect.
	if GMODFactor(500) <= GMODFactor(50000) {
		t.Fatalf("per-launch costs must dominate short kernels")
	}
}
