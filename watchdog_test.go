package gpushield

import (
	"errors"
	"testing"
)

// spinKernel builds a kernel whose every thread loops forever.
func spinKernel(t *testing.T) *Kernel {
	t.Helper()
	b := NewKernel("spin")
	acc := b.Mov(Imm(0))
	b.WhileAny(func() Operand {
		return b.SetLT(Imm(0), Imm(1)) // always true
	}, func() {
		b.MovTo(acc, b.Add(acc, Imm(1)))
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return k
}

func TestFacadeWatchdogSingleKernel(t *testing.T) {
	for _, arch := range []Arch{Nvidia, Intel} {
		sys := NewSystem(WithArch(arch), WithMaxCycles(20_000))
		rep, err := sys.Launch(spinKernel(t), 1, 64)
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("arch %v: want ErrWatchdog, got %v", arch, err)
		}
		if rep == nil || !rep.Aborted {
			t.Fatalf("arch %v: want aborted partial report, got %+v", arch, rep)
		}
	}
}

func TestFacadeWatchdogConcurrent(t *testing.T) {
	sys := NewSystem(WithMaxCycles(50_000))
	quick := func() *Kernel {
		b := NewKernel("quick")
		b.Mov(Imm(1))
		k, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return k
	}()
	reps, err := sys.LaunchConcurrent(IntraCore,
		PreparedLaunch{Kernel: quick, Grid: 1, Block: 32},
		PreparedLaunch{Kernel: spinKernel(t), Grid: 1, Block: 32})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", err)
	}
	if len(reps) != 2 || reps[0].Aborted || !reps[1].Aborted {
		t.Fatalf("want clean report for quick kernel and aborted for spin, got %+v", reps)
	}
}

func TestLaunchValidation(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.Launch(nil, 1, 32); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("nil kernel: want ErrInvalidLaunch, got %v", err)
	}
	k := spinKernel(t)
	if _, err := sys.Launch(k, 0, 32); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("zero grid: want ErrInvalidLaunch, got %v", err)
	}
	if _, err := sys.Launch(k, 1, -1); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("negative block: want ErrInvalidLaunch, got %v", err)
	}
	// A buffer param fed no argument at all.
	if _, err := sys.Launch(k, 1, 32, Scalar(1), Scalar(2), Scalar(3)); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("arg mismatch: want ErrInvalidLaunch, got %v", err)
	}
	if _, err := sys.LaunchConcurrent(IntraCore); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("empty concurrent set: want ErrInvalidLaunch, got %v", err)
	}
	if _, err := sys.LaunchConcurrent(IntraCore, PreparedLaunch{Kernel: nil, Grid: 1, Block: 32}); !errors.Is(err, ErrInvalidLaunch) {
		t.Fatalf("nil concurrent kernel: want ErrInvalidLaunch, got %v", err)
	}
}

func TestHeapExhaustionTyped(t *testing.T) {
	sys := NewSystem()
	sys.SetHeapLimit(1 << 12)
	if _, err := sys.Device().DeviceMalloc(1 << 20); !errors.Is(err, ErrAllocExhausted) {
		t.Fatalf("want ErrAllocExhausted, got %v", err)
	}
}
