package gpushield

import (
	"strings"
	"testing"
)

// scaleByTwo builds out[i] = in[i]*2 guarded by i < n.
func scaleByTwo() *Kernel {
	b := NewKernel("scale2")
	pin := b.BufferParam("in", true)
	pout := b.BufferParam("out", false)
	pn := b.ScalarParam("n")
	i := b.GlobalTID()
	g := b.SetLT(i, pn)
	b.If(g, func() {
		v := b.LoadGlobal(b.AddScaled(pin, i, 4), 4)
		b.StoreGlobal(b.AddScaled(pout, i, 4), b.Mul(v, Imm(2)), 4)
	})
	return b.MustBuild()
}

func TestSystemLaunchEndToEnd(t *testing.T) {
	for _, mode := range []Protection{Off, Shield, ShieldStatic} {
		sys := NewSystem(WithProtection(mode))
		const n = 512
		in := sys.Malloc("in", n*4, true)
		out := sys.Malloc("out", n*4, false)
		for i := 0; i < n; i++ {
			sys.WriteUint32(in, i, uint32(i))
		}
		rep, err := sys.Launch(scaleByTwo(), n/64, 64, Buf(in), Buf(out), Scalar(n))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if rep.Aborted || len(rep.Violations) != 0 {
			t.Fatalf("mode %v: %+v", mode, rep)
		}
		for i := 0; i < n; i += 37 {
			if got := sys.ReadUint32(out, i); got != uint32(2*i) {
				t.Fatalf("mode %v: out[%d] = %d", mode, i, got)
			}
		}
		switch mode {
		case Off:
			if rep.Checks != 0 {
				t.Fatalf("off mode checked")
			}
		case Shield:
			if rep.Checks == 0 {
				t.Fatalf("shield mode did not check")
			}
		case ShieldStatic:
			if rep.CheckReduction() < 0.99 {
				t.Fatalf("fully affine guarded kernel should be ~100%% statically proven, got %.2f", rep.CheckReduction())
			}
		}
	}
}

func TestStaticOOBRejectedAtLaunch(t *testing.T) {
	sys := NewSystem(WithProtection(ShieldStatic))
	buf := sys.Malloc("buf", 64, false)
	b := NewKernel("definitely-oob")
	p := b.BufferParam("buf", false)
	b.StoreGlobal(b.AddScaled(p, b.Add(b.GlobalTID(), Imm(1<<16)), 4), Imm(1), 4)
	_, err := sys.Launch(b.MustBuild(), 1, 32, Buf(buf))
	if err == nil || !strings.Contains(err.Error(), "static analysis") {
		t.Fatalf("expected compile-time rejection, got %v", err)
	}
}

func TestShieldBlocksCorruptionAcrossBuffers(t *testing.T) {
	run := func(mode Protection) (uint32, int) {
		sys := NewSystem(WithProtection(mode), WithSeed(99))
		victim := sys.Malloc("victim", 256, false)
		attacker := sys.Malloc("attacker", 256, false)
		sys.WriteUint32(victim, 0, 0x5EED)
		b := NewKernel("overflow")
		p := b.BufferParam("attacker", false)
		jump := int64(victim.Base-attacker.Base) / 4
		first := b.SetEQ(b.GlobalTID(), Imm(0))
		b.If(first, func() {
			b.StoreGlobal(b.AddScaled(p, Imm(jump), 4), Imm(0xBAD), 4)
		})
		rep, err := sys.Launch(b.MustBuild(), 1, 32, Buf(attacker))
		if err != nil {
			t.Fatal(err)
		}
		return sys.ReadUint32(victim, 0), len(rep.Violations)
	}
	if v, _ := run(Off); v != 0xBAD {
		t.Fatalf("unprotected overflow should corrupt the victim, got %#x", v)
	}
	v, violations := run(Shield)
	if v != 0x5EED {
		t.Fatalf("GPUShield failed to protect the victim: %#x", v)
	}
	if violations == 0 {
		t.Fatalf("violation not logged")
	}
}

func TestPreciseFaultOption(t *testing.T) {
	sys := NewSystem(WithPreciseFaults())
	buf := sys.Malloc("buf", 64, false)
	b := NewKernel("oob")
	p := b.BufferParam("buf", false)
	b.StoreGlobal(b.AddScaled(p, Imm(1024), 4), Imm(1), 4)
	rep, err := sys.Launch(b.MustBuild(), 1, 32, Buf(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Fatalf("precise-fault mode must abort the kernel")
	}
}

func TestIntelArchAndConcurrent(t *testing.T) {
	sys := NewSystem(WithArch(Intel))
	const n = 1024
	mk := func(prefix string) []Arg {
		in := sys.Malloc(prefix+"in", n*4, true)
		out := sys.Malloc(prefix+"out", n*4, false)
		for i := 0; i < n; i++ {
			sys.WriteUint32(in, i, uint32(i))
		}
		return []Arg{Buf(in), Buf(out), Scalar(n)}
	}
	reports, err := sys.LaunchConcurrent(IntraCore,
		PreparedLaunch{Kernel: scaleByTwo(), Grid: n / 64, Block: 64, Args: mk("a")},
		PreparedLaunch{Kernel: scaleByTwo(), Grid: n / 64, Block: 64, Args: mk("b")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 reports")
	}
	for _, r := range reports {
		if r.Aborted || len(r.Violations) > 0 {
			t.Fatalf("bad concurrent run: %+v", r)
		}
	}
}

func TestPageTracking(t *testing.T) {
	sys := NewSystem(WithPageTracking())
	const n = 4096 // 16KB = 4 pages
	in := sys.Malloc("in", n*4, true)
	out := sys.Malloc("out", n*4, false)
	rep, err := sys.Launch(scaleByTwo(), n/128, 128, Buf(in), Buf(out), Scalar(n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesPerBuffer["in"] != 4 || rep.PagesPerBuffer["out"] != 4 {
		t.Fatalf("page census wrong: %v", rep.PagesPerBuffer)
	}
}

func TestAnalyzeExposed(t *testing.T) {
	sys := NewSystem()
	in := sys.Malloc("in", 1024, true)
	out := sys.Malloc("out", 1024, false)
	args := []Arg{Buf(in), Buf(out), Scalar(256)}
	an, err := sys.Analyze(scaleByTwo(), 4, 64, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Accesses) != 2 {
		t.Fatalf("expected 2 analyzed accesses, got %d", len(an.Accesses))
	}
}

func TestHardwareReportExposed(t *testing.T) {
	sys := NewSystem()
	rep := sys.HardwareReport()
	if rep.TotalBytes != 909.5 {
		t.Fatalf("default hardware report should match Table 3: %f", rep.TotalBytes)
	}
}

func TestSeedDeterminism(t *testing.T) {
	ids := func(seed int64) uint64 {
		sys := NewSystem(WithSeed(seed))
		in := sys.Malloc("in", 256, true)
		out := sys.Malloc("out", 256, false)
		rep, err := sys.Launch(scaleByTwo(), 1, 64, Buf(in), Buf(out), Scalar(64))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles()
	}
	if ids(5) != ids(5) {
		t.Fatalf("same seed must reproduce identical runs")
	}
}

func TestCopyHelpers(t *testing.T) {
	sys := NewSystem()
	buf := sys.Malloc("buf", 16, false)
	if err := sys.CopyToDevice(buf, 0, []byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	got, err := sys.CopyFromDevice(buf, 0, 4)
	if err != nil || got[0] != 9 || got[3] != 6 {
		t.Fatalf("copy round trip failed: %v %v", got, err)
	}
	sys.WriteFloat32(buf, 1, 2.5)
	if sys.ReadFloat32(buf, 1) != 2.5 {
		t.Fatalf("float helpers broken")
	}
	sys.SetHeapLimit(1 << 16)
	if sys.Device() == nil {
		t.Fatalf("device accessor nil")
	}
}

func TestMailboxThroughFacade(t *testing.T) {
	sys := NewSystem(WithProtection(Shield))
	buf := sys.Malloc("buf", 64, false)
	box := sys.MallocManaged("mailbox", 4096)
	sys.SetMailbox(box)

	b := NewKernel("oob-facade")
	p := b.BufferParam("buf", false)
	first := b.SetEQ(b.GlobalTID(), Imm(0))
	b.If(first, func() {
		b.StoreGlobal(b.AddScaled(p, Imm(4096), 4), Imm(1), 4)
	})
	rep, err := sys.Launch(b.MustBuild(), 1, 32, Buf(buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("want 1 violation, got %d", len(rep.Violations))
	}
	recs := sys.ReadMailbox()
	if len(recs) != 1 {
		t.Fatalf("mailbox has %d records, want 1", len(recs))
	}
	if recs[0].MinAddr != buf.Base+4096*4 {
		t.Fatalf("mailbox addr %#x, want %#x", recs[0].MinAddr, buf.Base+4096*4)
	}
}
