# GPUShield reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-race bench bench-json experiments experiments-smoke examples attackdemo vet fmt clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

# Full suite under the race detector (what CI runs).
test-race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus structure micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmark snapshot as machine-readable JSON (BENCH_PR3.json).
# BENCHTIME=1x gives a fast smoke run (CI); the checked-in file is made with
# the default 2s. Override BENCH to snapshot a different selection.
BENCHTIME ?= 2s
BENCH ?= BenchmarkWarpIssueThroughput|BenchmarkMemInstrThroughput|BenchmarkSimulatorThroughput|BenchmarkFunctionalMemPath|BenchmarkBackingReadUint
bench-json:
	$(GO) test ./internal/sim -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_PR3.json

# Regenerate every table and figure at full fidelity.
experiments:
	$(GO) run ./cmd/experiments -run all

# One fast experiment through the parallel engine under the race detector —
# the CI smoke test for the pool + memo cache.
experiments-smoke:
	$(GO) run -race ./cmd/experiments -run heap -parallel 4 -json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/overflow
	$(GO) run ./examples/multikernel
	$(GO) run ./examples/staticanalysis
	$(GO) run ./examples/watchdog

attackdemo:
	$(GO) run ./cmd/attackdemo

clean:
	$(GO) clean ./...
