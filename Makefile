# GPUShield reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-race bench bench-json bench-guard experiments experiments-smoke soak-smoke resume-smoke service-smoke fuzz-smoke fleet-smoke examples attackdemo vet fmt clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

# Full suite under the race detector (what CI runs).
test-race:
	$(GO) test -race ./...

# One testing.B per paper table/figure plus structure micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmark snapshot as machine-readable JSON (BENCH_PR10.json;
# the service-level numbers live separately in loadgen's BENCH_PR6.json).
# BENCHTIME=1x gives a fast smoke run (CI); the checked-in file is made with
# the default 2s x 3 repeats on a quiet machine — benchjson folds the
# repeats into a best-of-N record per benchmark, which is what keeps a
# single noisy scheduling window on a shared host from poisoning one
# metric (see the snapshot protocol in scripts/bench_compare.sh).
# Override BENCH to snapshot a different selection and BENCHOUT to write a
# different file.
BENCHTIME ?= 2s
BENCHCOUNT ?= 3
BENCHOUT ?= BENCH_PR10.json
BENCH ?= BenchmarkWarpIssueThroughput|BenchmarkMemInstrThroughput|BenchmarkMemPlanPaths|BenchmarkSimulatorThroughput|BenchmarkFunctionalMemPath|BenchmarkBackingReadUint|BenchmarkCoreParallelLaunch|BenchmarkLaunchAllocs
bench-json:
	$(GO) test ./internal/sim -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# Fail if the serial hot paths — warp issue, cycle-level and functional
# mem-instr, backing-store reads — regressed >15%, or the launch path
# regrew allocations, against the pre-PR10 baseline (BENCH_PR10_base.json,
# recorded on the same host class; see the snapshot protocol in
# scripts/bench_compare.sh). PR 10 rebuilds the memory hot path around
# warp memory plans and transaction-granularity BCU checking; the guard
# holds the warp-issue and allocation lines while the mem-path lines move.
bench-guard:
	bash scripts/bench_compare.sh BENCH_PR10_base.json BENCH_PR10.json

# Regenerate every table and figure at full fidelity.
experiments:
	$(GO) run ./cmd/experiments -run all

# One fast experiment through the parallel engine under the race detector —
# the CI smoke test for the pool + memo cache.
experiments-smoke:
	$(GO) run -race ./cmd/experiments -run heap -parallel 4 -json

# Short fault-campaign soak under the race detector: loops campaigns under a
# deadline, checking cancellation, panic containment, and heap growth.
SOAK ?= 20s
soak-smoke:
	$(GO) run -race ./cmd/experiments -run faults -soak $(SOAK) -parallel 4

# Kill a journaled sweep mid-flight, resume it, and assert final stdout is
# byte-identical to an uninterrupted run.
resume-smoke:
	bash scripts/resume_smoke.sh

# Boot gpushieldd, drive it with a mixed benign/malicious tenant burst, and
# assert zero cross-tenant corruption, detected OOBs, and a clean SIGTERM
# drain (exit 0).
service-smoke:
	bash scripts/service_smoke.sh

# Differential kernel fuzz at a fixed seed: 500 generated kernels with
# planted OOB faults, three-way oracle (static analyzer / BCU / ground
# truth), byte-identical reports across -parallel widths, and a race pass.
# Any disagreement fails with a shrunk reproducer in the error message.
fuzz-smoke:
	bash scripts/fuzz_smoke.sh

# Distribute a store-backed sweep over worker processes, kill -9 one
# mid-campaign, and assert completion, stdout byte-identical to a serial
# run, and a warm re-run that re-simulates zero configs.
fleet-smoke:
	bash scripts/fleet_smoke.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/overflow
	$(GO) run ./examples/multikernel
	$(GO) run ./examples/staticanalysis
	$(GO) run ./examples/watchdog

attackdemo:
	$(GO) run ./cmd/attackdemo

clean:
	$(GO) clean ./...
